#include "runtime/adapt.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/serialize.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "rl/gcsl.h"

namespace murmur::runtime {

const char* to_string(SnapshotVerdict v) noexcept {
  switch (v) {
    case SnapshotVerdict::kPublished: return "published";
    case SnapshotVerdict::kPublishedUnguarded: return "published_unguarded";
    case SnapshotVerdict::kRejectedChecksum: return "rejected_checksum";
    case SnapshotVerdict::kRejectedGuardrail: return "rejected_guardrail";
  }
  return "unknown";
}

OnlineAdapter::OnlineAdapter(const core::MurmurationEnv& env,
                             const rl::PolicyNetwork& frozen_policy,
                             const rl::BucketedReplayTree* frozen_replay,
                             AdaptOptions opts)
    : shadow_env_(env.network(), env.options()),
      opts_(opts),
      calib_(env.num_devices(), opts.calib_alpha),
      trainer_rng_(opts.seed),
      drift_(env.num_devices(), opts.drift) {
  working_policy_ = clone_policy(frozen_policy);
  working_replay_ = clone_replay(frozen_replay);
  incumbent_policy_ = clone_policy(frozen_policy);
  incumbent_replay_ = clone_replay(frozen_replay);
  incumbent_bytes_ = frozen_policy.serialize();

  // Snapshot 0: the frozen policy itself, so current() is never null and
  // an un-adapted deployment behaves exactly like the frozen pipeline.
  auto snap = std::make_unique<PolicySnapshot>();
  snap->id_ = next_snapshot_id_.fetch_add(1, std::memory_order_relaxed);
  snap->policy_ = clone_policy(frozen_policy);
  snap->replay_ = clone_replay(frozen_replay);
  publish(std::move(snap));
}

OnlineAdapter::~OnlineAdapter() { stop(); }

std::unique_ptr<rl::PolicyNetwork> OnlineAdapter::clone_policy(
    const rl::PolicyNetwork& src) const {
  std::array<int, rl::kNumHeads> heads{};
  for (int h = 0; h < rl::kNumHeads; ++h)
    heads[static_cast<std::size_t>(h)] =
        shadow_env_.head_options(static_cast<rl::Head>(h));
  rl::PolicyOptions po;
  po.hidden = src.hidden_dim();
  po.seed = opts_.seed;
  auto clone = std::make_unique<rl::PolicyNetwork>(shadow_env_.feature_dim(),
                                                   heads, po);
  const bool ok = clone->deserialize(src.serialize());
  (void)ok;  // same architecture by construction
  return clone;
}

std::unique_ptr<rl::BucketedReplayTree> OnlineAdapter::clone_replay(
    const rl::BucketedReplayTree* src) const {
  if (src) return src->clone(opts_.bucket_queue);
  return std::make_unique<rl::BucketedReplayTree>(
      shadow_env_.constraint_dims(), shadow_env_.grid_points(),
      opts_.bucket_queue);
}

void OnlineAdapter::observe_outcome(const ServingSample& sample) {
  calib_.update(sample.participants, sample.model_latency_ms,
                sample.observed_latency_ms);
  samples_.fetch_add(1, std::memory_order_relaxed);
  obs::add("adapt.samples");
  std::lock_guard lock(sample_mutex_);
  pending_.push_back(sample);
  window_.push_back(sample);
  while (window_.size() > opts_.sample_window) window_.pop_front();
}

bool OnlineAdapter::observe_network(std::size_t device, double forecast_bw_mbps,
                                    double sampled_bw_mbps,
                                    double forecast_delay_ms,
                                    double sampled_delay_ms) {
  const bool fired =
      drift_.observe(device, forecast_bw_mbps, sampled_bw_mbps,
                     forecast_delay_ms, sampled_delay_ms);
  if (fired) {
    drift_events_.fetch_add(1, std::memory_order_relaxed);
    obs::add("adapt.drift.events");
    obs::gauge_set("adapt.drift.last_device", static_cast<double>(device));
  }
  return fired;
}

std::vector<rl::ConstraintPoint> OnlineAdapter::guard_points() const {
  std::vector<rl::ConstraintPoint> points;
  const std::size_t dims =
      static_cast<std::size_t>(shadow_env_.constraint_dims());
  // Flight records carry the planning constraint of every recent request
  // (newest last in the snapshot); the adapter's own window covers
  // deployments running with telemetry off.
  const auto records = obs::FlightRecorder::instance().snapshot();
  for (auto it = records.rbegin();
       it != records.rend() && points.size() < opts_.guard_max_points; ++it) {
    if (it->constraint_dims != dims ||
        dims > obs::FlightRecord::kMaxConstraintDims)
      continue;
    rl::ConstraintPoint c;
    c.coords.reserve(dims);
    for (std::size_t i = 0; i < dims; ++i)
      c.coords.push_back(static_cast<double>(it->constraint[i]));
    points.push_back(std::move(c));
  }
  {
    std::lock_guard lock(sample_mutex_);
    for (auto it = window_.rbegin();
         it != window_.rend() && points.size() < opts_.guard_max_points; ++it)
      if (it->constraint.coords.size() == dims)
        points.push_back(it->constraint);
  }
  return points;
}

double OnlineAdapter::shadow_compliance(
    const rl::PolicyNetwork& policy, const rl::BucketedReplayTree* replay,
    std::span<const rl::ConstraintPoint> points) {
  if (points.empty()) return 0.0;
  // Both sides of a guardrail comparison run through here with the same
  // points, the same seed and the same calibration, so the comparison is
  // apples-to-apples even while the model itself is biased.
  core::DecisionEngine engine(shadow_env_, policy, replay, &calib_);
  Rng rng(opts_.seed);
  std::size_t met = 0;
  for (const rl::ConstraintPoint& c : points)
    if (engine.decide(c, rng).satisfied) ++met;
  return static_cast<double>(met) / static_cast<double>(points.size());
}

SnapshotVerdict OnlineAdapter::offer_candidate(
    std::span<const std::uint8_t> frame,
    std::unique_ptr<rl::BucketedReplayTree> replay) {
  const auto payload = decode_checked(frame, kFrameVersion);
  if (!payload) {
    rejected_checksum_.fetch_add(1, std::memory_order_relaxed);
    obs::add("adapt.snapshots.rejected_checksum");
    roll_back_working();
    return SnapshotVerdict::kRejectedChecksum;
  }
  auto candidate = clone_policy(*incumbent_policy_);
  if (!candidate->deserialize(*payload)) {
    rejected_checksum_.fetch_add(1, std::memory_order_relaxed);
    obs::add("adapt.snapshots.rejected_checksum");
    roll_back_working();
    return SnapshotVerdict::kRejectedChecksum;
  }

  SnapshotVerdict verdict = SnapshotVerdict::kPublished;
  const std::vector<rl::ConstraintPoint> points = guard_points();
  if (points.size() < opts_.guard_min_points) {
    verdict = SnapshotVerdict::kPublishedUnguarded;
    unguarded_.fetch_add(1, std::memory_order_relaxed);
    obs::add("adapt.snapshots.unguarded");
  } else {
    const double cand = shadow_compliance(*candidate, replay.get(), points);
    const double inc =
        shadow_compliance(*incumbent_policy_, incumbent_replay_.get(), points);
    obs::gauge_set("adapt.guard.candidate_compliance", cand);
    obs::gauge_set("adapt.guard.incumbent_compliance", inc);
    if (cand + opts_.guard_epsilon < inc) {
      rejected_guardrail_.fetch_add(1, std::memory_order_relaxed);
      obs::add("adapt.snapshots.rejected_guardrail");
      roll_back_working();
      return SnapshotVerdict::kRejectedGuardrail;
    }
  }

  auto snap = std::make_unique<PolicySnapshot>();
  snap->id_ = next_snapshot_id_.fetch_add(1, std::memory_order_relaxed);
  snap->checksum_ = fnv1a64(frame);
  snap->policy_ = std::move(candidate);
  snap->replay_ = std::move(replay);

  incumbent_policy_ = clone_policy(snap->policy());
  incumbent_replay_ = clone_replay(snap->replay());
  incumbent_bytes_ = *payload;

  const std::uint64_t id = snap->id_;
  publish(std::move(snap));
  published_count_.fetch_add(1, std::memory_order_relaxed);
  obs::add("adapt.snapshots.published");
  obs::gauge_set("adapt.snapshot.id", static_cast<double>(id));
  publish_metrics();
  return verdict;
}

void OnlineAdapter::roll_back_working() {
  // A rejected candidate must not compound across cycles: the working
  // policy snaps back to the incumbent's exact weights.
  working_policy_->deserialize(incumbent_bytes_);
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  obs::add("adapt.rollbacks");
}

void OnlineAdapter::publish(std::unique_ptr<PolicySnapshot> snap) {
  std::lock_guard lock(publish_mutex_);
  retained_.push_back(std::move(snap));
  // Release pairs with the decision path's acquire in current(); retired
  // snapshots stay in retained_ until destruction, so a reader that loaded
  // the old pointer keeps dereferencing valid memory.
  published_.store(retained_.back().get(), std::memory_order_release);
}

void OnlineAdapter::publish_metrics() const {
  obs::gauge_set("adapt.calibration.max_ratio", calib_.max_ratio());
}

std::vector<std::uint8_t> OnlineAdapter::frame_working_policy() const {
  return encode_checked(working_policy_->serialize(), kFrameVersion);
}

bool OnlineAdapter::run_cycle() {
  std::vector<ServingSample> batch;
  {
    std::lock_guard lock(sample_mutex_);
    if (pending_.size() < opts_.min_cycle_samples) return false;
    batch.swap(pending_);
  }
  cycles_.fetch_add(1, std::memory_order_relaxed);
  obs::add("adapt.cycles");

  // 1. Live trajectories: relabel every served request with its OBSERVED
  //    outcome and file it into the working replay tree.
  std::size_t inserted = 0;
  for (const ServingSample& s : batch) {
    if (s.actions.empty()) continue;
    const rl::Outcome observed{s.accuracy, s.observed_latency_ms};
    rl::ReplayEntry e;
    e.actions = s.actions;
    e.outcome = observed;
    e.tight = shadow_env_.relabel(s.constraint, observed);
    e.reward = shadow_env_.reward(e.tight, observed);
    if (e.reward > 0.0 && working_replay_->insert(std::move(e))) ++inserted;
  }
  if (inserted > 0) obs::add("adapt.replay.inserted", inserted);

  // 2. Incremental GCSL: imitate the replay tree (which now contains the
  //    live, reality-labelled trajectories next to the offline ones).
  for (int u = 0; u < opts_.updates_per_cycle; ++u) {
    std::vector<std::pair<rl::ConstraintPoint, const std::vector<int>*>> b;
    b.reserve(opts_.imitation_batch);
    for (std::size_t i = 0; i < opts_.imitation_batch; ++i)
      if (const rl::ReplayEntry* e = working_replay_->random_entry(trainer_rng_))
        b.emplace_back(e->tight, &e->actions);
    if (b.empty()) break;
    rl::GcslTrainer::imitation_update(shadow_env_, *working_policy_, b);
  }

  // 3. Frame, guard, publish. offer_candidate rolls the working policy
  //    back to the incumbent itself on any rejection.
  const std::vector<std::uint8_t> frame = frame_working_policy();
  (void)offer_candidate(frame, clone_replay(working_replay_.get()));
  publish_metrics();
  return true;
}

void OnlineAdapter::trainer_main() {
  while (running_.load(std::memory_order_relaxed)) {
    run_cycle();
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        opts_.cycle_interval_ms));
  }
}

void OnlineAdapter::start() {
  if (running_.exchange(true)) return;
  trainer_ = std::thread([this] { trainer_main(); });
}

void OnlineAdapter::stop() {
  running_.store(false);
  if (trainer_.joinable()) trainer_.join();
}

OnlineAdapter::Stats OnlineAdapter::stats() const noexcept {
  Stats s;
  s.samples = samples_.load(std::memory_order_relaxed);
  s.cycles = cycles_.load(std::memory_order_relaxed);
  s.published = published_count_.load(std::memory_order_relaxed);
  s.unguarded = unguarded_.load(std::memory_order_relaxed);
  s.rejected_checksum = rejected_checksum_.load(std::memory_order_relaxed);
  s.rejected_guardrail = rejected_guardrail_.load(std::memory_order_relaxed);
  s.rollbacks = rollbacks_.load(std::memory_order_relaxed);
  s.drift_events = drift_events_.load(std::memory_order_relaxed);
  s.snapshot_id = current()->id();
  s.calibration_max_ratio = calib_.max_ratio();
  return s;
}

}  // namespace murmur::runtime
