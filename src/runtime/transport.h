// In-process message transport standing in for the paper's gRPC channel
// (DESIGN.md §2). Payloads really are serialized to bytes, shipped through
// a per-destination mailbox, and deserialized on the receiving side;
// simulated arrival time is charged from the network simulator so transfer
// costs match the analytic latency evaluator.
//
// Fault tolerance (DESIGN.md §5.8): an optional FaultInjector (or a
// per-message hook, for tests) can drop or duplicate messages. Sends retry
// with exponential backoff against the simulated clock; a message lost
// after every retry leaves a tombstone in the mailbox so the receiver's
// deadline wait resolves immediately in wall time instead of hanging.
// Without an injector/hook attached the transport behaves bit-for-bit as
// the fault-free original.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <vector>

#include "netsim/faults.h"
#include "netsim/network.h"
#include "tensor/quantize.h"

namespace murmur::runtime {

/// Wire codec for quantized activations.
std::vector<std::uint8_t> encode_activation(const QuantizedTensor& qt);
std::optional<QuantizedTensor> decode_activation(
    std::span<const std::uint8_t> bytes);

/// Largest batch count decode_activation_batch will accept; a corrupted
/// header can never drive an unbounded allocation.
constexpr std::uint32_t kMaxWireBatch = 256;

/// Batched wire envelope ("ACTB"): a batch count in the header followed by
/// length-prefixed single-sample ACT1 payloads, one per batch member.
/// Members are quantized individually before encoding, so coalescing
/// requests into one message never changes any member's wire content
/// relative to a serial send. Decode validates the envelope (magic, count
/// bounds, per-member framing, no trailing bytes) and runs every member
/// through the hardened single-sample decoder.
std::vector<std::uint8_t> encode_activation_batch(
    std::span<const QuantizedTensor> batch);
std::optional<std::vector<QuantizedTensor>> decode_activation_batch(
    std::span<const std::uint8_t> bytes);

struct TransportStats {
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;   // serialized bytes actually moved
  std::uint64_t wire_bytes = 0;      // idealized (bit-packed) wire bytes
  double sim_transfer_ms = 0.0;      // summed simulated transfer time
  // Fault accounting (all zero unless an injector/hook is attached):
  std::uint64_t drops = 0;       // messages lost after exhausting retries
  std::uint64_t retries = 0;     // resend attempts after a lost send
  /// recv_for waits that expired — either the simulated deadline passed
  /// (late/tombstoned message) or the *wall-clock* backstop elapsed with no
  /// message at all. The backstop defaults to kDefaultWallBudgetMs and is
  /// configurable per transport via set_wall_budget_ms() /
  /// SystemOptions::transport_wall_budget_ms, so deployments can trade
  /// fail-fast detection against patience on slow hosts.
  std::uint64_t timeouts = 0;
  std::uint64_t duplicates = 0;  // duplicate deliveries discarded on recv
  double backoff_ms = 0.0;       // summed simulated retry backoff
};

class Transport {
 public:
  explicit Transport(const netsim::Network& network);

  /// Sim-time deadline meaning "wait forever" (the blocking recv default).
  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();
  /// Default wall-clock backstop for recv_for: a bound on waiting for a
  /// message that was never sent. Configure per transport with
  /// set_wall_budget_ms() (surfaced as SystemOptions::transport_wall_budget_ms).
  static constexpr double kDefaultWallBudgetMs = 1'000.0;
  /// recv_for sentinel: "use the configured wall budget".
  static constexpr double kConfiguredWallBudget = -1.0;
  /// Floor of the wall-clock wait after which a *blocking* recv logs an
  /// error: nothing in this in-process transport legitimately blocks this
  /// long, so exceeding it means a lost/never-sent message (the bug
  /// recv_for exists to fix). The effective threshold is
  /// max(kRecvSanityWallMs, 2 * wall_budget_ms()).
  static constexpr double kRecvSanityWallMs = 2'000.0;

  struct Message {
    int src = 0;
    std::uint64_t tag = 0;
    std::vector<std::uint8_t> payload;
    double sim_arrival_ms = 0.0;
    bool dropped = false;  // tombstone: the real message was lost in flight
  };

  /// Bounded retransmission of lost sends, charged in simulated time:
  /// attempt k (1-based) retries after backoff_ms * factor^(k-1).
  struct RetryPolicy {
    int max_attempts = 4;
    double backoff_ms = 2.0;
    double backoff_factor = 2.0;
  };

  /// Per-message fault decision for deterministic tests; overrides the
  /// injector when set. Called once per send attempt.
  enum class MessageFate { kDeliver, kDrop, kDuplicate };
  using MessageHook =
      std::function<MessageFate(int src, int dst, std::uint64_t tag,
                                int attempt)>;

  /// Attach/detach fault sources (not owned; must outlive the transport).
  void set_fault_injector(netsim::FaultInjector* injector) noexcept;
  void set_message_hook(MessageHook hook);
  void set_retry_policy(const RetryPolicy& policy) noexcept;

  /// Configure the wall-clock backstop used when recv_for is called with
  /// kConfiguredWallBudget (non-positive values reset to the default).
  void set_wall_budget_ms(double ms) noexcept;
  double wall_budget_ms() const noexcept { return wall_budget_ms_; }

  /// Ship `payload` from src to dst. `wire_bytes` is the idealized
  /// bit-packed size used for simulated-time accounting; `sim_send_ms` is
  /// the sender's simulated clock at send time. Returns simulated arrival
  /// (or, for a message lost after all retries, the time the sender gave
  /// up — a tombstone is left so the receiver's wait resolves).
  double send(int src, int dst, std::uint64_t tag,
              std::vector<std::uint8_t> payload, std::size_t wire_bytes,
              double sim_send_ms);

  /// Deadline-aware receive: the message with `tag` addressed to `dst`, or
  /// nullopt if it was dropped in flight, arrives after `sim_deadline_ms`
  /// (simulated), or fails to show up within `wall_budget_ms` (host wall
  /// clock — a backstop against waiting on a send that never happened;
  /// kConfiguredWallBudget resolves to wall_budget_ms()). Expired waits
  /// count into TransportStats::timeouts.
  std::optional<Message> recv_for(int dst, std::uint64_t tag,
                                  double sim_deadline_ms,
                                  double wall_budget_ms =
                                      kConfiguredWallBudget);

  /// Blocking receive of the message with `tag` addressed to `dst`.
  /// Implemented as recv_for with no deadline; logs an error (and keeps
  /// waiting) once the wait exceeds kRecvSanityWallMs.
  Message recv(int dst, std::uint64_t tag);

  TransportStats stats() const;
  void reset_stats();

 private:
  const netsim::Network& network_;
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  netsim::FaultInjector* injector_ = nullptr;
  MessageHook hook_;
  RetryPolicy retry_;
  double wall_budget_ms_ = kDefaultWallBudgetMs;
  mutable std::mutex stats_mutex_;
  TransportStats stats_;
};

}  // namespace murmur::runtime
