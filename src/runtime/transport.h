// In-process message transport standing in for the paper's gRPC channel
// (DESIGN.md §2). Payloads really are serialized to bytes, shipped through
// a per-destination mailbox, and deserialized on the receiving side;
// simulated arrival time is charged from the network simulator so transfer
// costs match the analytic latency evaluator.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "netsim/network.h"
#include "tensor/quantize.h"

namespace murmur::runtime {

/// Wire codec for quantized activations.
std::vector<std::uint8_t> encode_activation(const QuantizedTensor& qt);
std::optional<QuantizedTensor> decode_activation(
    std::span<const std::uint8_t> bytes);

struct TransportStats {
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;   // serialized bytes actually moved
  std::uint64_t wire_bytes = 0;      // idealized (bit-packed) wire bytes
  double sim_transfer_ms = 0.0;      // summed simulated transfer time
};

class Transport {
 public:
  explicit Transport(const netsim::Network& network);

  struct Message {
    int src = 0;
    std::uint64_t tag = 0;
    std::vector<std::uint8_t> payload;
    double sim_arrival_ms = 0.0;
  };

  /// Ship `payload` from src to dst. `wire_bytes` is the idealized
  /// bit-packed size used for simulated-time accounting; `sim_send_ms` is
  /// the sender's simulated clock at send time. Returns simulated arrival.
  double send(int src, int dst, std::uint64_t tag,
              std::vector<std::uint8_t> payload, std::size_t wire_bytes,
              double sim_send_ms);

  /// Blocking receive of the message with `tag` addressed to `dst`.
  Message recv(int dst, std::uint64_t tag);

  TransportStats stats() const;
  void reset_stats();

 private:
  const netsim::Network& network_;
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  mutable std::mutex stats_mutex_;
  TransportStats stats_;
};

}  // namespace murmur::runtime
