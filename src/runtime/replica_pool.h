// Replica-sharded serving tier (DESIGN.md §5.13).
//
// A ReplicaPool fronts N replicas, each a full MurmurationSystem (its own
// resident SupernetHost, executor and device breaker board), with a single
// router thread and one worker thread per replica:
//
//   * Routing: the router plans each request on a planner replica (the
//     lowest-id live one), then routes the planned request to the replica
//     whose last-executed strategy key matches — strategy affinity keeps a
//     hot submodel resident instead of thrashing reconfiguration — falling
//     back to the lowest-load routable replica (ties to the lowest id).
//     Plans are plain data (config + placement), so planning on one
//     replica and executing on another is sound: the simulated device
//     topologies are identical across replicas.
//
//   * Health: the §5.9 breaker machinery is generalized from devices to
//     replicas — one BreakerBoard entry per replica (exempt_origin off:
//     every replica is breakable), fed by per-request failures. An open
//     replica takes no traffic until its cooldown elapses and a single
//     half-open probe request readmits it; the router deliberately steers
//     a non-affinity request at the probed replica so the grant is spent,
//     not burned.
//
//   * Membership (state machine, all transitions logged):
//
//       kJoining ──(warm-up: configure + probe succeeds)──> kServing
//       kJoining ──(warm-up probe fails)────────────────--> kDead
//       kServing ──drain()──> kDraining ──(queue empty)──> kDead
//       kServing / kDraining ──kill()──────────────────--> kDead
//
//     kill() models a crash: the victim's queued requests are re-planned
//     and re-routed to survivors (bounded by max_redispatches), and a
//     group caught mid-execution on the victim is re-dispatched when the
//     worker notices the state — no admitted request is lost or hung. A
//     drained replica finishes its queue first; a joining replica takes no
//     traffic until its warm-up probe inference succeeds.
//
//   * Admission support: per-replica busy-until reservation clocks on the
//     simulated clock. The serving layer reserves against the earliest-
//     available routable replica and scales its queue capacity by the
//     routable count, shedding with "no_healthy_replica" only when the
//     pool has nobody to route to.
//
// Per-replica micro-batching mirrors serving's dispatcher (§5.10): each
// worker greedily coalesces consecutive same-strategy queue entries up to
// max_batch within the sim-clock batch window, so affinity routing
// compounds with coalescing — same-key requests converge on the same
// replica and then share one supernet switch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/breaker.h"
#include "runtime/system.h"

namespace murmur::runtime {

struct ReplicaPoolOptions {
  /// Upper bound on per-replica strategy-coalesced micro-batches (1 =
  /// serve each routed request individually).
  std::size_t max_batch = 1;
  /// Sim-clock width of an open per-replica batch group (see
  /// ServingOptions::batch_window_ms).
  double batch_window_ms = 25.0;
  /// Wall-clock grace a worker waits for further routed arrivals before
  /// drain-flushing an open, non-full group.
  double drain_grace_ms = 0.0;
  /// Per-replica circuit breakers. exempt_origin is forced off — every
  /// replica is individually breakable.
  BreakerOptions breaker{};
  /// Crash tolerance bound: a request re-dispatched off dead replicas more
  /// than this many times resolves as kFailed instead of looping.
  int max_redispatches = 2;
  /// Input for the join warm-up probe inference. Empty (default) skips the
  /// probe: a joined replica flips straight to kServing after
  /// configuration, which tests use for determinism; production rigs pass
  /// a real image so a broken joiner is caught before it takes traffic.
  Tensor warmup_image;
};

enum class ReplicaState : std::uint8_t { kJoining, kServing, kDraining, kDead };

const char* to_string(ReplicaState state) noexcept;

class ReplicaPool {
 public:
  /// One finished (or terminally failed) request, delivered to the done
  /// callback exactly once per submitted request.
  struct Completion {
    InferenceResult result;
    /// Replica that executed the request (-1 if it never reached one).
    int replica = -1;
    /// Times the request was re-dispatched off a dead replica.
    int redispatches = 0;
  };
  using DoneFn = std::function<void(Completion&&)>;

  /// Every seed replica starts kServing (the caller constructed and
  /// therefore warmed them). Replica ids are assigned in vector order and
  /// stamped into each system (set_replica_id).
  ReplicaPool(std::vector<std::unique_ptr<MurmurationSystem>> replicas,
              ReplicaPoolOptions opts);

  /// Destruction drains: queued requests still resolve (routed, executed
  /// or terminally failed) before the router and workers join.
  ~ReplicaPool();

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  /// Hand one admitted request to the router. `done` fires exactly once,
  /// on a pool thread; it must not call back into submit().
  void submit(Tensor image, RequestContext ctx, DoneFn done);

  // ---- Membership -------------------------------------------------------

  /// Add a replica at runtime. It enters kJoining and warms up on its own
  /// thread — configure (and probe, when warmup_image is set) at sim time
  /// `sim_now_ms` — before flipping to kServing; a failed probe lands it
  /// in kDead without ever taking traffic. Returns the new replica id.
  int join(std::unique_ptr<MurmurationSystem> system, double sim_now_ms);

  /// Graceful exit: stop routing to `id`, let its worker finish the
  /// queue, then transition to kDead. No-op on dead replicas.
  void drain(int id);

  /// Crash `id` now: queued requests are re-planned and re-routed to
  /// survivors; a group mid-execution is re-dispatched when its worker
  /// observes the death. No-op on dead replicas.
  void kill(int id);

  ReplicaState state(int id) const;
  /// Block until replica `id` reaches `s` (or `wall_timeout_ms` elapses);
  /// true when the state was reached. Membership transitions are cv-
  /// signalled, so tests wait deterministically instead of polling.
  bool await_state(int id, ReplicaState s, double wall_timeout_ms) const;

  // ---- Admission support (serving layer, under its admission mutex) -----

  /// Replicas currently eligible for routing: kServing and not
  /// breaker-open. Admission scales queue capacity by this.
  std::size_t routable_count() const;

  /// Earliest sim time a request arriving at `sim_arrival_ms` could start
  /// on some routable replica (its reservation clock). Negative when no
  /// replica is routable.
  double peek_earliest_start(double sim_arrival_ms) const;

  /// Reserve `reserve_ms` of occupancy on the earliest-available routable
  /// replica's clock; returns the estimated start (negative when no
  /// replica is routable and nothing was reserved).
  double reserve(double sim_arrival_ms, double reserve_ms);

  // ---- Introspection ----------------------------------------------------

  std::size_t size() const;
  /// The pool's SLO (the planner replica's system SLO); serving's
  /// SLO-less submit overload uses it.
  core::Slo slo() const;
  /// Replica `id`'s system, nullptr when out of range. Tests and tools
  /// shape per-replica networks through this; routing state is pool-owned.
  MurmurationSystem* replica_system(int id);

  const BreakerBoard& breakers() const noexcept { return breakers_; }
  BreakerBoard& breakers() noexcept { return breakers_; }

  struct ReplicaInfo {
    int id = 0;
    ReplicaState state = ReplicaState::kDead;
    /// Queued + executing requests on this replica.
    int load = 0;
    std::uint64_t executed = 0;
    /// Last executed strategy key (the affinity target).
    std::uint64_t affinity_key = 0;
    BreakerBoard::State breaker = BreakerBoard::State::kClosed;
    /// Lifetime supernet switches on this replica's host.
    std::uint64_t switches = 0;
    /// Switch requests held because the submodel was already resident —
    /// the direct payoff of strategy-affinity routing.
    std::uint64_t switches_held = 0;
  };
  std::vector<ReplicaInfo> snapshot() const;

  // Lifetime routing/robustness counters.
  std::uint64_t planned() const noexcept { return planned_.load(); }
  std::uint64_t affinity_routed() const noexcept {
    return affinity_routed_.load();
  }
  std::uint64_t spill_routed() const noexcept { return spill_routed_.load(); }
  std::uint64_t probe_routed() const noexcept { return probe_routed_.load(); }
  std::uint64_t redispatched() const noexcept { return redispatched_.load(); }
  std::uint64_t unroutable_failures() const noexcept {
    return unroutable_failures_.load();
  }
  std::uint64_t batches() const noexcept { return batches_.load(); }
  std::uint64_t coalesced() const noexcept { return coalesced_.load(); }
  std::uint64_t joins() const noexcept { return joins_.load(); }
  std::uint64_t kills() const noexcept { return kills_.load(); }
  std::uint64_t drains() const noexcept { return drains_.load(); }
  /// Total supernet switches across every replica host.
  std::uint64_t total_switches() const;
  /// Total held (already-resident) switch requests across every host.
  std::uint64_t total_held_switches() const;

 private:
  /// An unplanned request in the router inbox (fresh submits and
  /// re-dispatches off dead replicas both land here).
  struct PoolRequest {
    Tensor image;
    RequestContext ctx;
    DoneFn done;
    int redispatches = 0;
  };
  /// A planned request parked on a replica queue.
  struct Routed {
    Tensor image;
    PlannedRequest plan;
    DoneFn done;
    int redispatches = 0;
  };
  struct Replica {
    int id = 0;
    std::unique_ptr<MurmurationSystem> system;
    std::atomic<ReplicaState> state{ReplicaState::kServing};
    std::atomic<std::uint64_t> affinity_key{0};
    std::atomic<int> load{0};
    std::atomic<std::uint64_t> executed{0};
    /// Guards queue; state transitions additionally take state_mutex_.
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Routed> queue;
    double busy_until_ms = 0.0;  // reservation clock; under reserve_mutex_
    std::thread worker;
  };

  void router_loop();
  void route(PoolRequest req);
  void worker_loop(Replica& r);
  /// Requeue a request to the inbox for re-planning on a survivor, or
  /// terminally fail it when the bound is hit / the pool is stopping.
  void redispatch(Tensor image, RequestContext ctx, DoneFn done,
                  int redispatches);
  void fail_request(const RequestContext& ctx, DoneFn& done,
                    int redispatches);
  /// Wake await_state waiters after a state store (empty critical section
  /// on state_mutex_ orders the store before the notify).
  void signal_state() const;
  Replica* rep(int id) const;
  /// Lowest-id live (non-dead) replica for planning; nullptr if none.
  Replica* planner() const;

  ReplicaPoolOptions opts_;
  BreakerBoard breakers_;

  /// Guards replicas_ growth; entries are stable (unique_ptr).
  mutable std::mutex members_mutex_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  /// Guards state transitions + wakes await_state waiters.
  mutable std::mutex state_mutex_;
  mutable std::condition_variable state_cv_;

  mutable std::mutex reserve_mutex_;

  mutable std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;
  std::deque<PoolRequest> inbox_;
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> planned_{0}, affinity_routed_{0},
      spill_routed_{0}, probe_routed_{0}, redispatched_{0},
      unroutable_failures_{0}, batches_{0}, coalesced_{0}, joins_{0},
      kills_{0}, drains_{0};

  // Last member: joined before anything above is destroyed (the router
  // drains the inbox on stop, so queued requests still resolve).
  std::thread router_;
};

}  // namespace murmur::runtime
