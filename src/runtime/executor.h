// Distributed executor: runs one partitioned inference across the simulated
// device fleet (paper §5: Scheduler + Executor + Remote Execution).
//
// Blocks execute in dependency order; the tiles of a spatially partitioned
// block run concurrently on a thread-per-device pool. Activations crossing
// a device boundary are quantized (per the block's configured bit-width),
// serialized, shipped through the in-process transport and dequantized on
// the receiving side — so quantization error genuinely propagates through
// the rest of the network, exactly as it would over gRPC. Simulated
// end-to-end latency is charged by the same analytic model the RL policy
// was trained against.
#pragma once

#include "common/thread_pool.h"
#include "partition/subnet_latency.h"
#include "runtime/transport.h"
#include "supernet/supernet.h"

namespace murmur::runtime {

struct ExecutionReport {
  Tensor logits;
  double sim_latency_ms = 0.0;  // simulated end-to-end latency
  double wall_ms = 0.0;         // host wall-clock of this run
  TransportStats transport;
  int partitioned_blocks = 0;   // blocks that actually ran tiled
};

class DistributedExecutor {
 public:
  DistributedExecutor(supernet::Supernet& supernet,
                      const netsim::Network& network);

  /// Execute `image` (NCHW, spatial size == config.resolution) under the
  /// given strategy. The supernet's active config is set to `config`.
  ExecutionReport run(const Tensor& image,
                      const supernet::SubnetConfig& config,
                      const partition::PlacementPlan& plan);

 private:
  supernet::Supernet& supernet_;
  const netsim::Network& network_;
  Transport transport_;
  ThreadPool pool_;
};

}  // namespace murmur::runtime
