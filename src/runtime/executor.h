// Distributed executor: runs one partitioned inference across the simulated
// device fleet (paper §5: Scheduler + Executor + Remote Execution).
//
// Blocks execute in dependency order; the tiles of a spatially partitioned
// block run concurrently on a thread-per-device pool. Activations crossing
// a device boundary are quantized (per the block's configured bit-width),
// serialized, shipped through the in-process transport and dequantized on
// the receiving side — so quantization error genuinely propagates through
// the rest of the network, exactly as it would over gRPC. Simulated
// end-to-end latency is charged by the same analytic model the RL policy
// was trained against.
#pragma once

#include "common/thread_pool.h"
#include "netsim/faults.h"
#include "partition/subnet_latency.h"
#include "runtime/transport.h"
#include "supernet/supernet.h"

namespace murmur::runtime {

/// Fault-tolerance knobs for the executor (DESIGN.md §5.8). Attaching an
/// injector turns failover on; without one the executor behaves (and
/// costs) exactly as the fault-free original.
struct FailoverOptions {
  netsim::FaultInjector* injector = nullptr;  // not owned; nullptr = off
  /// Sim-time a receiver waits beyond the last expected arrival before
  /// declaring the message lost and falling back.
  double recv_slack_ms = 100.0;
  /// Charge for detecting a dead device and re-dispatching its tile.
  double redispatch_penalty_ms = 5.0;
  Transport::RetryPolicy retry{};
};

struct ExecutionReport {
  Tensor logits;
  double sim_latency_ms = 0.0;  // simulated end-to-end latency
  double wall_ms = 0.0;         // host wall-clock of this run
  TransportStats transport;
  int partitioned_blocks = 0;   // blocks that actually ran tiled
  // Failover accounting (all zero without an injector):
  int redispatched_tiles = 0;   // stem/head/tile assignments moved off dead devices
  int local_fallbacks = 0;      // receives that timed out and re-read locally
  double failover_penalty_ms = 0.0;  // extra simulated latency charged
  bool degraded = false;        // any fault handled during this run
  /// device_failures[d]: failover events this run attributable to device d
  /// (its tile was redispatched off it, or a message it sent never arrived).
  /// Feeds the per-device circuit breakers (DESIGN.md §5.9). Sized
  /// num_devices when an injector is attached, empty otherwise.
  std::vector<int> device_failures;
};

class DistributedExecutor {
 public:
  DistributedExecutor(supernet::Supernet& supernet,
                      const netsim::Network& network);

  /// Attach (or clear, with a default-constructed value) fault tolerance;
  /// forwards the injector and retry policy to the transport.
  void set_failover(const FailoverOptions& failover);
  const FailoverOptions& failover() const noexcept { return failover_; }

  /// Forward SystemOptions::transport_wall_budget_ms to the transport's
  /// recv backstop (non-positive resets to the default).
  void set_transport_wall_budget(double ms) noexcept {
    transport_.set_wall_budget_ms(ms);
  }

  /// Execute `image` (NCHW, spatial size == config.resolution) under the
  /// given strategy. The supernet's active config is set to `config`.
  /// `sim_start_ms` anchors the request on the simulated clock so
  /// scheduled faults (crash at t, blackout window) line up with the
  /// blocks executing at that time.
  ExecutionReport run(const Tensor& image,
                      const supernet::SubnetConfig& config,
                      const partition::PlacementPlan& plan,
                      double sim_start_ms = 0.0);

 private:
  supernet::Supernet& supernet_;
  const netsim::Network& network_;
  Transport transport_;
  ThreadPool pool_;
  FailoverOptions failover_;
};

}  // namespace murmur::runtime
