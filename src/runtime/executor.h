// Distributed executor: runs one partitioned inference across the simulated
// device fleet (paper §5: Scheduler + Executor + Remote Execution).
//
// Blocks execute in dependency order; the tiles of a spatially partitioned
// block run concurrently on a thread-per-device pool. Activations crossing
// a device boundary are quantized (per the block's configured bit-width),
// serialized, shipped through the in-process transport and dequantized on
// the receiving side — so quantization error genuinely propagates through
// the rest of the network, exactly as it would over gRPC. Simulated
// end-to-end latency is charged by the same analytic model the RL policy
// was trained against.
#pragma once

#include <atomic>

#include "common/thread_pool.h"
#include "netsim/faults.h"
#include "partition/subnet_latency.h"
#include "runtime/transport.h"
#include "supernet/supernet.h"

namespace murmur::runtime {

/// Fault-tolerance knobs for the executor (DESIGN.md §5.8). Attaching an
/// injector turns failover on; without one the executor behaves (and
/// costs) exactly as the fault-free original.
struct FailoverOptions {
  netsim::FaultInjector* injector = nullptr;  // not owned; nullptr = off
  /// Sim-time a receiver waits beyond the last expected arrival before
  /// declaring the message lost and falling back.
  double recv_slack_ms = 100.0;
  /// Charge for detecting a dead device and re-dispatching its tile.
  double redispatch_penalty_ms = 5.0;
  Transport::RetryPolicy retry{};
};

struct ExecutionReport {
  Tensor logits;
  double sim_latency_ms = 0.0;  // simulated end-to-end latency
  /// Simulated executor time this request keeps the pipeline busy. Equals
  /// sim_latency_ms for a standalone run; for a member of a fused batch it
  /// is the batch's evaluated latency divided by the batch size — payload
  /// bytes and compute scale with the batch while per-message path delays
  /// are paid once — which is what serving admission reserves per request.
  double sim_occupancy_ms = 0.0;
  double wall_ms = 0.0;         // host wall-clock of this run
  TransportStats transport;
  int partitioned_blocks = 0;   // blocks that actually ran tiled
  // Failover accounting (all zero without an injector):
  int redispatched_tiles = 0;   // stem/head/tile assignments moved off dead devices
  int local_fallbacks = 0;      // receives that timed out and re-read locally
  double failover_penalty_ms = 0.0;  // extra simulated latency charged
  bool degraded = false;        // any fault handled during this run
  /// device_failures[d]: failover events this run attributable to device d
  /// (its tile was redispatched off it, or a message it sent never arrived).
  /// Feeds the per-device circuit breakers (DESIGN.md §5.9). Sized
  /// num_devices when an injector is attached, empty otherwise.
  std::vector<int> device_failures;
  /// Critical-path decomposition of the evaluated sim latency (per-request
  /// phase ledger input; DESIGN.md §5.11). Filled only while telemetry is
  /// enabled — the evaluator skips the component chain otherwise — so
  /// check `device_compute_ms.empty()` before reading. For a fused-batch
  /// member this decomposes the member's standalone (batch == 1)
  /// evaluation, matching sim_latency_ms.
  partition::PhaseBreakdown attrib;
};

/// Result of a strategy-coalesced batch (DESIGN.md §5.10). Per-request
/// reports stay individual — logits and simulated latency are identical to
/// what a serial run would produce — while wall-clock costs (activation,
/// per-block scaffolding, transport envelopes) are paid once per batch.
struct BatchExecutionReport {
  std::vector<ExecutionReport> reports;  // one per batch member, in order
  /// True when the members executed as a single fused pass; false when the
  /// batch was decomposed to per-request run() calls (fault injection is
  /// attached, or the batch has one member). Transport stats in the fused
  /// case are batch-level aggregates shared by every member's report.
  bool batched = false;
  double wall_ms = 0.0;  // wall-clock of the whole batch
};

class DistributedExecutor {
 public:
  DistributedExecutor(supernet::Supernet& supernet,
                      const netsim::Network& network);

  /// Attach (or clear, with a default-constructed value) fault tolerance;
  /// forwards the injector and retry policy to the transport.
  void set_failover(const FailoverOptions& failover);
  const FailoverOptions& failover() const noexcept { return failover_; }

  /// Forward SystemOptions::transport_wall_budget_ms to the transport's
  /// recv backstop (non-positive resets to the default).
  void set_transport_wall_budget(double ms) noexcept {
    transport_.set_wall_budget_ms(ms);
  }

  /// Execute `image` (NCHW, spatial size == config.resolution) under the
  /// given strategy. The supernet's active config is set to `config`.
  /// `sim_start_ms` anchors the request on the simulated clock so
  /// scheduled faults (crash at t, blackout window) line up with the
  /// blocks executing at that time.
  ExecutionReport run(const Tensor& image,
                      const supernet::SubnetConfig& config,
                      const partition::PlacementPlan& plan,
                      double sim_start_ms = 0.0);

  /// Execute a strategy-coalesced batch: every image runs under the SAME
  /// (config, plan), activated once. Samples are quantized individually at
  /// tile boundaries and shipped in one ACTB envelope per (tile, piece), so
  /// each member's logits are bitwise identical to a serial run() of that
  /// member. Tile scatter overlaps tile compute: assembly tasks are
  /// dispatched to the device pool before the send loop runs, and tag
  /// epochs give consecutive batches disjoint mailbox namespaces so a
  /// batch's trailing receives never alias the next batch's leading sends.
  /// With a fault injector attached (failover is a per-request protocol)
  /// or a single-member batch, the batch decomposes to per-request run()
  /// calls with per-member sim anchors.
  BatchExecutionReport run_batch(const std::vector<Tensor>& images,
                                 const supernet::SubnetConfig& config,
                                 const partition::PlacementPlan& plan,
                                 const std::vector<double>& sim_start_ms);

 private:
  supernet::Supernet& supernet_;
  const netsim::Network& network_;
  Transport transport_;
  ThreadPool pool_;
  FailoverOptions failover_;
  std::atomic<std::uint64_t> batch_epoch_{1};  // tag namespace per batch
};

}  // namespace murmur::runtime
