// Inference-time batch normalization, folded to a per-channel affine
// transform y = scale * x + shift (which is how deployed edge runtimes
// execute BN).
#pragma once

#include "nn/layer.h"

namespace murmur::nn {

class BatchNorm final : public Layer {
 public:
  /// Identity-initialised (scale 1, shift 0) folded BN over `channels`.
  explicit BatchNorm(int channels);
  /// Fold explicit BN statistics into scale/shift.
  BatchNorm(int channels, std::span<const float> gamma,
            std::span<const float> beta, std::span<const float> running_mean,
            std::span<const float> running_var, float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  double flops(const std::vector<int>& in) const override {
    return 2.0 * static_cast<double>(shape_numel(in));
  }
  std::size_t param_bytes() const noexcept override {
    return (scale_.size() + shift_.size()) * sizeof(float);
  }
  std::string name() const override;

  std::span<float> scale() noexcept { return scale_; }
  std::span<float> shift() noexcept { return shift_; }

 private:
  int channels_;
  std::vector<float> scale_, shift_;
};

}  // namespace murmur::nn
