// Fully connected layer (the supernet's classifier head). Accepts NC or
// NCHW-with-1x1-spatial input.
#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace murmur::nn {

class Linear final : public Layer {
 public:
  Linear(int in_features, int out_features, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& input) override;
  /// Forward into a caller-owned `{n, out_features}` tensor; no heap
  /// allocation. The batch dimension is processed per sample, so batched
  /// output is bitwise equal to running the samples one at a time.
  void forward_into(const Tensor& input, Tensor& out);
  std::vector<int> out_shape(const std::vector<int>& in) const override;
  double flops(const std::vector<int>& in) const override;
  std::size_t param_bytes() const noexcept override;
  std::string name() const override;

  int in_features() const noexcept { return in_features_; }
  int out_features() const noexcept { return out_features_; }
  Tensor& weights() noexcept { return weight_; }

 private:
  int in_features_, out_features_;
  Tensor weight_;  // [out, in]
  std::vector<float> bias_;
};

/// Numerically stable softmax over the last dimension of an NC tensor.
Tensor softmax(const Tensor& logits);

}  // namespace murmur::nn
