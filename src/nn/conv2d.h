// 2-D convolution with groups (groups == in_channels gives depthwise).
//
// Weights are stored at the supernet's *maximum* kernel size; an elastic
// convolution can execute with a centre-cropped smaller kernel — the
// weight-sharing trick used by once-for-all style supernets — via
// `set_active_kernel`. Cropped weights are cached per kernel size (and
// invalidated when `weights()` hands out mutable access), so NAS kernel
// switching costs a lookup, not a copy, in steady state.
//
// The heavy lifting happens in src/tensor kernels: pointwise/grouped convs
// run packed GEMM over im2col columns (the k=1 stride-1 case skips im2col
// entirely — the input already is the column matrix), depthwise convs take
// the direct border/interior-split kernel. All scratch comes from the
// calling thread's Workspace, so `forward_into` performs no heap
// allocation once caches and arenas are warm.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"
#include "tensor/conv_kernels.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/quantize.h"

namespace murmur::nn {

class Conv2D final : public Layer {
 public:
  /// Square kernel, symmetric "same"-style padding of kernel/2 by default.
  /// `max_kernel` must be odd; stride >= 1; groups divides both channel
  /// counts.
  Conv2D(int in_channels, int out_channels, int max_kernel, int stride,
         int groups, Rng& rng, bool bias = true);

  /// Select the kernel size to execute with (odd, <= max kernel). The
  /// active kernel uses the centre crop of the stored max-size weights;
  /// the crop is built (or revalidated) here, off the forward path.
  void set_active_kernel(int k);

  /// Execute-precision knob for the NAS quantization axis: k8 routes the
  /// depthwise and direct-pointwise paths through the int8 kernels (per-
  /// channel s8 weights, per-call u8 activations); every other width runs
  /// fp32. Quantized weight caches are built (or revalidated) here, off
  /// the forward path, and versioned like the cropped-weight cache.
  void set_compute_precision(QuantBits bits);
  QuantBits compute_precision() const noexcept { return compute_bits_; }
  int active_kernel() const noexcept { return active_kernel_; }
  int max_kernel() const noexcept { return max_kernel_; }
  int in_channels() const noexcept { return in_channels_; }
  int out_channels() const noexcept { return out_channels_; }
  int stride() const noexcept { return stride_; }
  int groups() const noexcept { return groups_; }
  bool depthwise() const noexcept { return groups_ == in_channels_; }

  Tensor forward(const Tensor& input) override;
  /// Forward into a caller-owned output tensor shaped `out_shape(input)`.
  /// Steady state (warm crop cache + workspace) performs no heap
  /// allocation. Thread-safe for concurrent calls on the same layer.
  void forward_into(const Tensor& input, Tensor& out);
  std::vector<int> out_shape(const std::vector<int>& in) const override;
  double flops(const std::vector<int>& in) const override;
  std::size_t param_bytes() const noexcept override;
  std::string name() const override;

  /// Direct access for weight-reload benchmarks (Fig 19). The non-const
  /// overload assumes the caller may mutate and invalidates the cropped
  /// weight cache.
  Tensor& weights() noexcept {
    ++weights_version_;
    return weight_;
  }
  const Tensor& weights() const noexcept { return weight_; }

  /// Cropped-weight cache statistics (for tests and telemetry).
  std::uint64_t crop_cache_hits() const noexcept { return crop_hits_; }
  std::uint64_t crop_cache_builds() const noexcept { return crop_builds_; }
  /// Quantized-weight cache rebuilds (int8 path; for tests and telemetry).
  std::uint64_t int8_cache_builds() const noexcept { return int8_builds_; }

 private:
  /// Cached centre crop of `weight_` at the active kernel size. The
  /// returned reference stays valid until `weights()` is mutated.
  const Tensor& cropped_weight();
  /// Cached packed form of the (cropped) pointwise weight matrix for the
  /// batched 1×1 fast path: pack once per weight epoch, reuse per sample.
  const PackedGemmA& packed_pointwise(const Tensor& w);
  /// Int8 analogues, same locking and versioning discipline.
  const PackedGemmInt8& packed_pointwise_int8(const Tensor& w);
  const kernels::QuantDwWeights& quant_dw_weights(const Tensor& w);
  void forward_grouped(const Tensor& input, const Tensor& w, Tensor& out);

  int in_channels_, out_channels_, max_kernel_, stride_, groups_;
  int active_kernel_;
  Tensor weight_;  // [out, in/groups, max_k, max_k]
  std::vector<float> bias_;

  // Crop cache: one slot per odd kernel size (index (k-1)/2), fixed length
  // so cached Tensor references never move. `version` tracks the weight
  // epoch the crop was built from.
  struct CropSlot {
    Tensor w;
    std::uint64_t version = 0;
    bool ready = false;
  };
  // Int8 weight caches, versioned on the same weight epoch as the crop
  // slots. Depthwise gets one slot per odd kernel size (quantized from the
  // matching crop); pointwise gets one packed s8 matrix.
  struct QuantDwSlot {
    kernels::QuantDwWeights qw;
    std::uint64_t version = 0;
    bool ready = false;
  };
  std::mutex crop_mutex_;
  std::vector<CropSlot> crop_cache_;
  PackedGemmA packed_pw_;  // guarded by crop_mutex_, like the crop slots
  std::uint64_t packed_pw_version_ = 0;
  PackedGemmInt8 packed_pw_i8_;  // guarded by crop_mutex_
  std::uint64_t packed_pw_i8_version_ = 0;
  std::vector<QuantDwSlot> qdw_cache_;  // guarded by crop_mutex_
  QuantBits compute_bits_ = QuantBits::k32;
  std::uint64_t weights_version_ = 1;
  std::uint64_t crop_hits_ = 0;
  std::uint64_t crop_builds_ = 0;
  std::uint64_t int8_builds_ = 0;
};

}  // namespace murmur::nn
