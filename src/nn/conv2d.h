// 2-D convolution with groups (groups == in_channels gives depthwise).
//
// Weights are stored at the supernet's *maximum* kernel size; an elastic
// convolution can execute with a centre-cropped smaller kernel — the
// weight-sharing trick used by once-for-all style supernets — via
// `set_active_kernel`.
#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace murmur::nn {

class Conv2D final : public Layer {
 public:
  /// Square kernel, symmetric "same"-style padding of kernel/2 by default.
  /// `max_kernel` must be odd; stride >= 1; groups divides both channel
  /// counts.
  Conv2D(int in_channels, int out_channels, int max_kernel, int stride,
         int groups, Rng& rng, bool bias = true);

  /// Select the kernel size to execute with (odd, <= max kernel). The
  /// active kernel uses the centre crop of the stored max-size weights.
  void set_active_kernel(int k);
  int active_kernel() const noexcept { return active_kernel_; }
  int max_kernel() const noexcept { return max_kernel_; }
  int in_channels() const noexcept { return in_channels_; }
  int out_channels() const noexcept { return out_channels_; }
  int stride() const noexcept { return stride_; }
  int groups() const noexcept { return groups_; }
  bool depthwise() const noexcept { return groups_ == in_channels_; }

  Tensor forward(const Tensor& input) override;
  std::vector<int> out_shape(const std::vector<int>& in) const override;
  double flops(const std::vector<int>& in) const override;
  std::size_t param_bytes() const noexcept override;
  std::string name() const override;

  /// Direct access for weight-reload benchmarks (Fig 19).
  Tensor& weights() noexcept { return weight_; }
  const Tensor& weights() const noexcept { return weight_; }

 private:
  Tensor cropped_weight() const;
  Tensor forward_grouped(const Tensor& input, const Tensor& w) const;

  int in_channels_, out_channels_, max_kernel_, stride_, groups_;
  int active_kernel_;
  Tensor weight_;  // [out, in/groups, max_k, max_k]
  std::vector<float> bias_;
};

}  // namespace murmur::nn
