// Squeeze-and-Excitation block (MobileNetV3 uses SE in several stages):
// global-pool -> FC(reduce) -> ReLU -> FC(expand) -> hard-sigmoid -> scale.
#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace murmur::nn {

class SEBlock final : public Layer {
 public:
  SEBlock(int channels, int reduction, Rng& rng);

  Tensor forward(const Tensor& input) override;
  /// Forward into a caller-owned tensor shaped like the input (may alias
  /// it). Per-sample processing keeps batched output bitwise equal to
  /// running the samples one at a time.
  void forward_into(const Tensor& input, Tensor& out);
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  double flops(const std::vector<int>& in) const override;
  std::size_t param_bytes() const noexcept override;
  std::string name() const override;

 private:
  int channels_, hidden_;
  Tensor w1_;  // [hidden, channels]
  Tensor w2_;  // [channels, hidden]
};

}  // namespace murmur::nn
