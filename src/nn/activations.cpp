#include "nn/activations.h"

namespace murmur::nn {

float apply_activation(Activation a, float x) noexcept {
  switch (a) {
    case Activation::kIdentity:
      return x;
    case Activation::kRelu:
      return x > 0.0f ? x : 0.0f;
    case Activation::kHardSwish: {
      const float r = std::clamp(x + 3.0f, 0.0f, 6.0f);
      return x * r / 6.0f;
    }
    case Activation::kHardSigmoid:
      return std::clamp(x + 3.0f, 0.0f, 6.0f) / 6.0f;
  }
  return x;
}

void apply_activation(Activation a, Tensor& t) noexcept {
  if (a == Activation::kIdentity) return;
  for (auto& v : t.data()) v = apply_activation(a, v);
}

const char* activation_name(Activation a) noexcept {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kHardSwish: return "hardswish";
    case Activation::kHardSigmoid: return "hardsigmoid";
  }
  return "?";
}

}  // namespace murmur::nn
