#include "nn/linear.h"

#include <cassert>
#include <cmath>
#include <sstream>

#include "tensor/gemm.h"

namespace murmur::nn {

Linear::Linear(int in_features, int out_features, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = Tensor::kaiming({out_features, in_features}, in_features, rng);
  if (bias) bias_.assign(static_cast<std::size_t>(out_features), 0.0f);
}

Tensor Linear::forward(const Tensor& input) {
  Tensor out({input.dim(0), out_features_});
  forward_into(input, out);
  return out;
}

void Linear::forward_into(const Tensor& input, Tensor& out) {
  // NCHW with 1x1 spatial is the same memory layout as NC — read in place
  // instead of copying through reshaped().
  if (input.rank() == 4) assert(input.dim(2) == 1 && input.dim(3) == 1);
  assert(input.rank() == 2 || input.rank() == 4);
  assert(input.dim(1) == in_features_);
  assert(out.rank() == 2 && out.dim(0) == input.dim(0) &&
         out.dim(1) == out_features_);
  const int n = input.dim(0);
  const float* bias = bias_.empty() ? nullptr : bias_.data();
  for (int b = 0; b < n; ++b)
    gemv(out_features_, in_features_, weight_.raw(),
         input.raw() + static_cast<std::size_t>(b) * in_features_, bias,
         out.raw() + static_cast<std::size_t>(b) * out_features_);
}

std::vector<int> Linear::out_shape(const std::vector<int>& in) const {
  return {in[0], out_features_};
}

double Linear::flops(const std::vector<int>& in) const {
  return 2.0 * in[0] * in_features_ * out_features_;
}

std::size_t Linear::param_bytes() const noexcept {
  return weight_.bytes() + bias_.size() * sizeof(float);
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "linear(" << in_features_ << "->" << out_features_ << ")";
  return os.str();
}

Tensor softmax(const Tensor& logits) {
  assert(logits.rank() == 2);
  Tensor out = logits;
  const int n = out.dim(0);
  const int c = out.dim(1);
  for (int b = 0; b < n; ++b) {
    float mx = out.at(b, 0);
    for (int i = 1; i < c; ++i) mx = std::max(mx, out.at(b, i));
    float sum = 0.0f;
    for (int i = 0; i < c; ++i) {
      out.at(b, i) = std::exp(out.at(b, i) - mx);
      sum += out.at(b, i);
    }
    for (int i = 0; i < c; ++i) out.at(b, i) /= sum;
  }
  return out;
}

}  // namespace murmur::nn
