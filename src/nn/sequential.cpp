#include "nn/sequential.h"

namespace murmur::nn {

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x);
  return x;
}

std::vector<int> Sequential::out_shape(const std::vector<int>& in) const {
  std::vector<int> s = in;
  for (const auto& l : layers_) s = l->out_shape(s);
  return s;
}

double Sequential::flops(const std::vector<int>& in) const {
  double total = 0.0;
  std::vector<int> s = in;
  for (const auto& l : layers_) {
    total += l->flops(s);
    s = l->out_shape(s);
  }
  return total;
}

std::size_t Sequential::param_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& l : layers_) total += l->param_bytes();
  return total;
}

std::vector<Sequential::LayerProfile> Sequential::profile(
    const std::vector<int>& in) const {
  std::vector<LayerProfile> out;
  out.reserve(layers_.size());
  std::vector<int> s = in;
  for (const auto& l : layers_) {
    LayerProfile p;
    p.name = l->name();
    p.flops = l->flops(s);
    s = l->out_shape(s);
    p.out_elements = shape_numel(s);
    p.param_bytes = l->param_bytes();
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace murmur::nn
