#include "nn/batchnorm.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace murmur::nn {

BatchNorm::BatchNorm(int channels) : channels_(channels) {
  scale_.assign(static_cast<std::size_t>(channels), 1.0f);
  shift_.assign(static_cast<std::size_t>(channels), 0.0f);
}

BatchNorm::BatchNorm(int channels, std::span<const float> gamma,
                     std::span<const float> beta,
                     std::span<const float> running_mean,
                     std::span<const float> running_var, float eps)
    : BatchNorm(channels) {
  assert(gamma.size() == static_cast<std::size_t>(channels));
  for (int c = 0; c < channels; ++c) {
    const float inv = 1.0f / std::sqrt(running_var[c] + eps);
    scale_[c] = gamma[c] * inv;
    shift_[c] = beta[c] - running_mean[c] * gamma[c] * inv;
  }
}

Tensor BatchNorm::forward(const Tensor& input) {
  assert(input.rank() == 4 && input.dim(1) == channels_);
  Tensor out = input;
  const int n = out.dim(0), h = out.dim(2), w = out.dim(3);
  for (int b = 0; b < n; ++b)
    for (int c = 0; c < channels_; ++c) {
      const float s = scale_[c], t = shift_[c];
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) out.at(b, c, y, x) = s * out.at(b, c, y, x) + t;
    }
  return out;
}

std::string BatchNorm::name() const {
  std::ostringstream os;
  os << "bn(" << channels_ << ")";
  return os.str();
}

}  // namespace murmur::nn
