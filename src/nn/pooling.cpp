#include "nn/pooling.h"

#include <cassert>

namespace murmur::nn {

Tensor GlobalAvgPool::forward(const Tensor& input) {
  assert(input.rank() == 4);
  const int n = input.dim(0), c = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  Tensor out({n, c, 1, 1});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch) {
      float s = 0.0f;
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) s += input.at(b, ch, y, x);
      out.at(b, ch, 0, 0) = s * inv;
    }
  return out;
}

Tensor AvgPool::forward(const Tensor& input) {
  assert(input.rank() == 4);
  const int n = input.dim(0), c = input.dim(1);
  const int oh = input.dim(2) / k_, ow = input.dim(3) / k_;
  assert(oh > 0 && ow > 0);
  Tensor out({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch)
      for (int y = 0; y < oh; ++y)
        for (int x = 0; x < ow; ++x) {
          float s = 0.0f;
          for (int dy = 0; dy < k_; ++dy)
            for (int dx = 0; dx < k_; ++dx)
              s += input.at(b, ch, y * k_ + dy, x * k_ + dx);
          out.at(b, ch, y, x) = s * inv;
        }
  return out;
}

}  // namespace murmur::nn
