#include "nn/conv2d.h"

#include <cassert>
#include <sstream>

#include "tensor/gemm.h"

namespace murmur::nn {

Conv2D::Conv2D(int in_channels, int out_channels, int max_kernel, int stride,
               int groups, Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      max_kernel_(max_kernel),
      stride_(stride),
      groups_(groups),
      active_kernel_(max_kernel) {
  assert(max_kernel % 2 == 1);
  assert(in_channels % groups == 0 && out_channels % groups == 0);
  const int cpg = in_channels / groups;
  weight_ = Tensor::kaiming({out_channels, cpg, max_kernel, max_kernel},
                            cpg * max_kernel * max_kernel, rng);
  if (bias) bias_.assign(static_cast<std::size_t>(out_channels), 0.0f);
}

void Conv2D::set_active_kernel(int k) {
  assert(k % 2 == 1 && k >= 1 && k <= max_kernel_);
  active_kernel_ = k;
}

Tensor Conv2D::cropped_weight() const {
  if (active_kernel_ == max_kernel_) return weight_;
  const int off = (max_kernel_ - active_kernel_) / 2;
  const int cpg = in_channels_ / groups_;
  Tensor w({out_channels_, cpg, active_kernel_, active_kernel_});
  for (int o = 0; o < out_channels_; ++o)
    for (int c = 0; c < cpg; ++c)
      for (int y = 0; y < active_kernel_; ++y)
        for (int x = 0; x < active_kernel_; ++x)
          w.at(o, c, y, x) = weight_.at(o, c, y + off, x + off);
  return w;
}

std::vector<int> Conv2D::out_shape(const std::vector<int>& in) const {
  assert(in.size() == 4);
  const int pad = active_kernel_ / 2;
  return {in[0], out_channels_,
          conv_out_size(in[2], active_kernel_, stride_, pad),
          conv_out_size(in[3], active_kernel_, stride_, pad)};
}

double Conv2D::flops(const std::vector<int>& in) const {
  const auto out = out_shape(in);
  const double per_out = 2.0 * (in_channels_ / groups_) * active_kernel_ *
                         active_kernel_;
  return per_out * out[0] * out[1] * out[2] * out[3];
}

std::size_t Conv2D::param_bytes() const noexcept {
  return weight_.bytes() + bias_.size() * sizeof(float);
}

std::string Conv2D::name() const {
  std::ostringstream os;
  os << (depthwise() ? "dwconv" : "conv") << active_kernel_ << "x"
     << active_kernel_ << "s" << stride_ << "(" << in_channels_ << "->"
     << out_channels_ << ")";
  return os.str();
}

Tensor Conv2D::forward(const Tensor& input) {
  assert(input.rank() == 4);
  assert(input.dim(1) == in_channels_);
  return forward_grouped(input, cropped_weight());
}

Tensor Conv2D::forward_grouped(const Tensor& input, const Tensor& w) const {
  const int n = input.dim(0);
  const int h = input.dim(2);
  const int wd = input.dim(3);
  const int k = active_kernel_;
  const int pad = k / 2;
  const int oh = conv_out_size(h, k, stride_, pad);
  const int ow = conv_out_size(wd, k, stride_, pad);
  const int cpg = in_channels_ / groups_;   // input channels per group
  const int opg = out_channels_ / groups_;  // output channels per group
  Tensor out({n, out_channels_, oh, ow});

  if (depthwise()) {
    // Direct loop: im2col buys nothing for 1-channel groups.
    for (int b = 0; b < n; ++b) {
      for (int c = 0; c < in_channels_; ++c) {
        for (int oy = 0; oy < oh; ++oy) {
          for (int ox = 0; ox < ow; ++ox) {
            float acc = bias_.empty() ? 0.0f : bias_[c];
            for (int ky = 0; ky < k; ++ky) {
              const int iy = oy * stride_ - pad + ky;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * stride_ - pad + kx;
                if (ix < 0 || ix >= wd) continue;
                acc += w.at(c, 0, ky, kx) * input.at(b, c, iy, ix);
              }
            }
            out.at(b, c, oy, ox) = acc;
          }
        }
      }
    }
    return out;
  }

  // Grouped/standard conv via im2col + GEMM per (image, group).
  const std::size_t col_rows = static_cast<std::size_t>(cpg) * k * k;
  const std::size_t col_cols = static_cast<std::size_t>(oh) * ow;
  std::vector<float> col(col_rows * col_cols);
  for (int b = 0; b < n; ++b) {
    for (int g = 0; g < groups_; ++g) {
      const float* in_ptr =
          input.raw() + ((static_cast<std::size_t>(b) * in_channels_ +
                          static_cast<std::size_t>(g) * cpg) *
                         h * wd);
      im2col(in_ptr, cpg, h, wd, k, k, stride_, pad, col.data());
      const float* w_ptr =
          w.raw() + static_cast<std::size_t>(g) * opg * cpg * k * k;
      float* out_ptr =
          out.raw() + ((static_cast<std::size_t>(b) * out_channels_ +
                        static_cast<std::size_t>(g) * opg) *
                       oh * ow);
      gemm(opg, static_cast<int>(col_rows), static_cast<int>(col_cols), w_ptr,
           col.data(), out_ptr);
      if (!bias_.empty()) {
        for (int o = 0; o < opg; ++o) {
          const float bval = bias_[static_cast<std::size_t>(g) * opg + o];
          float* row = out_ptr + static_cast<std::size_t>(o) * oh * ow;
          for (std::size_t i = 0; i < col_cols; ++i) row[i] += bval;
        }
      }
    }
  }
  return out;
}

}  // namespace murmur::nn
