#include "nn/conv2d.h"

#include <cassert>
#include <cstring>
#include <sstream>

#include "obs/trace.h"
#include "tensor/conv_kernels.h"
#include "tensor/gemm.h"
#include "tensor/workspace.h"

namespace murmur::nn {

Conv2D::Conv2D(int in_channels, int out_channels, int max_kernel, int stride,
               int groups, Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      max_kernel_(max_kernel),
      stride_(stride),
      groups_(groups),
      active_kernel_(max_kernel) {
  assert(max_kernel % 2 == 1);
  assert(in_channels % groups == 0 && out_channels % groups == 0);
  const int cpg = in_channels / groups;
  weight_ = Tensor::kaiming({out_channels, cpg, max_kernel, max_kernel},
                            cpg * max_kernel * max_kernel, rng);
  if (bias) bias_.assign(static_cast<std::size_t>(out_channels), 0.0f);
  crop_cache_.resize(static_cast<std::size_t>((max_kernel + 1) / 2));
  qdw_cache_.resize(crop_cache_.size());
}

void Conv2D::set_active_kernel(int k) {
  assert(k % 2 == 1 && k >= 1 && k <= max_kernel_);
  active_kernel_ = k;
  // Build/refresh the crop eagerly: switching is the cheap, serial phase
  // (SupernetHost::switch_submodel); forwards may run concurrently later.
  if (k != max_kernel_) (void)cropped_weight();
  if (compute_bits_ == QuantBits::k8 && depthwise())
    (void)quant_dw_weights(cropped_weight());
}

void Conv2D::set_compute_precision(QuantBits bits) {
  compute_bits_ = bits;
  if (bits != QuantBits::k8) return;
  // Warm the quantized caches off the forward path, mirroring the eager
  // crop build above — switching is serial, forwards may be concurrent.
  if (depthwise())
    (void)quant_dw_weights(cropped_weight());
  else if (active_kernel_ == 1 && stride_ == 1 && groups_ == 1)
    (void)packed_pointwise_int8(cropped_weight());
}

const Tensor& Conv2D::cropped_weight() {
  if (active_kernel_ == max_kernel_) return weight_;
  const int k = active_kernel_;
  CropSlot& slot = crop_cache_[static_cast<std::size_t>((k - 1) / 2)];
  std::lock_guard lock(crop_mutex_);
  if (slot.ready && slot.version == weights_version_) {
    ++crop_hits_;
    return slot.w;
  }
  const int off = (max_kernel_ - k) / 2;
  const int cpg = in_channels_ / groups_;
  if (slot.w.empty()) slot.w = Tensor({out_channels_, cpg, k, k});
  const std::size_t row = static_cast<std::size_t>(k);
  for (int o = 0; o < out_channels_; ++o)
    for (int c = 0; c < cpg; ++c)
      for (int y = 0; y < k; ++y)
        std::memcpy(&slot.w.at(o, c, y, 0), &weight_.at(o, c, y + off, off),
                    row * sizeof(float));
  slot.version = weights_version_;
  slot.ready = true;
  ++crop_builds_;
  return slot.w;
}

const PackedGemmA& Conv2D::packed_pointwise(const Tensor& w) {
  std::lock_guard lock(crop_mutex_);
  if (packed_pw_version_ != weights_version_ ||
      !packed_pw_.matches(out_channels_, in_channels_)) {
    packed_pw_.pack(out_channels_, in_channels_, w.raw());
    packed_pw_version_ = weights_version_;
  }
  return packed_pw_;
}

const PackedGemmInt8& Conv2D::packed_pointwise_int8(const Tensor& w) {
  std::lock_guard lock(crop_mutex_);
  if (packed_pw_i8_version_ != weights_version_ ||
      !packed_pw_i8_.matches(out_channels_, in_channels_)) {
    packed_pw_i8_.pack(out_channels_, in_channels_, w.raw());
    packed_pw_i8_version_ = weights_version_;
    ++int8_builds_;
  }
  return packed_pw_i8_;
}

const kernels::QuantDwWeights& Conv2D::quant_dw_weights(const Tensor& w) {
  QuantDwSlot& slot =
      qdw_cache_[static_cast<std::size_t>((active_kernel_ - 1) / 2)];
  std::lock_guard lock(crop_mutex_);
  if (slot.ready && slot.version == weights_version_ &&
      slot.qw.matches(out_channels_, active_kernel_))
    return slot.qw;
  kernels::quantize_dw_weights(w.raw(), out_channels_, active_kernel_,
                               slot.qw);
  slot.version = weights_version_;
  slot.ready = true;
  ++int8_builds_;
  return slot.qw;
}

std::vector<int> Conv2D::out_shape(const std::vector<int>& in) const {
  assert(in.size() == 4);
  const int pad = active_kernel_ / 2;
  return {in[0], out_channels_,
          conv_out_size(in[2], active_kernel_, stride_, pad),
          conv_out_size(in[3], active_kernel_, stride_, pad)};
}

double Conv2D::flops(const std::vector<int>& in) const {
  const auto out = out_shape(in);
  const double per_out = 2.0 * (in_channels_ / groups_) * active_kernel_ *
                         active_kernel_;
  return per_out * out[0] * out[1] * out[2] * out[3];
}

std::size_t Conv2D::param_bytes() const noexcept {
  return weight_.bytes() + bias_.size() * sizeof(float);
}

std::string Conv2D::name() const {
  std::ostringstream os;
  os << (depthwise() ? "dwconv" : "conv") << active_kernel_ << "x"
     << active_kernel_ << "s" << stride_ << "(" << in_channels_ << "->"
     << out_channels_ << ")";
  return os.str();
}

Tensor Conv2D::forward(const Tensor& input) {
  Tensor out(out_shape(input.shape()));
  forward_into(input, out);
  return out;
}

void Conv2D::forward_into(const Tensor& input, Tensor& out) {
  assert(input.rank() == 4);
  assert(input.dim(1) == in_channels_);
  assert(out.rank() == 4 && out.dim(0) == input.dim(0) &&
         out.dim(1) == out_channels_);
  forward_grouped(input, cropped_weight(), out);
}

void Conv2D::forward_grouped(const Tensor& input, const Tensor& w,
                             Tensor& out) {
  const int n = input.dim(0);
  const int h = input.dim(2);
  const int wd = input.dim(3);
  const int k = active_kernel_;
  const int pad = k / 2;
  const int oh = conv_out_size(h, k, stride_, pad);
  const int ow = conv_out_size(wd, k, stride_, pad);
  const int cpg = in_channels_ / groups_;   // input channels per group
  const int opg = out_channels_ / groups_;  // output channels per group
  assert(out.dim(2) == oh && out.dim(3) == ow);

  if (depthwise()) {
    const std::size_t in_img = static_cast<std::size_t>(in_channels_) * h * wd;
    const std::size_t out_img =
        static_cast<std::size_t>(out_channels_) * oh * ow;
    if (compute_bits_ == QuantBits::k8) {
      MURMUR_SPAN("kernel.int8.dwconv", "kernel",
                  obs::maybe_histogram("kernel.int8.dwconv_ms"));
      const kernels::QuantDwWeights& qw = quant_dw_weights(w);
      // Per sample, so activation scales — and therefore bits — are
      // independent of how requests were batched together.
      for (int b = 0; b < n; ++b)
        kernels::depthwise_conv2d_int8(
            input.raw() + b * in_img, in_channels_, h, wd, qw,
            bias_.empty() ? nullptr : bias_.data(), stride_, pad,
            out.raw() + b * out_img);
      return;
    }
    MURMUR_SPAN("kernel.dwconv", "kernel",
                obs::maybe_histogram("kernel.dwconv_ms"));
    for (int b = 0; b < n; ++b)
      kernels::depthwise_conv2d(input.raw() + b * in_img, in_channels_, h, wd,
                                w.raw(), bias_.empty() ? nullptr : bias_.data(),
                                k, stride_, pad, out.raw() + b * out_img);
    return;
  }

  // Grouped/standard conv: packed GEMM over im2col columns per (image,
  // group). For 1×1 stride-1 convs the input layout already *is* the
  // column matrix, so the GEMM reads it in place.
  MURMUR_SPAN("kernel.conv", "kernel",
              obs::maybe_histogram("kernel.conv_ms"));
  const std::size_t col_rows = static_cast<std::size_t>(cpg) * k * k;
  const std::size_t col_cols = static_cast<std::size_t>(oh) * ow;
  const bool direct = (k == 1 && stride_ == 1);

  // Int8 pointwise: the input already is the column matrix, so each sample
  // is one dequant-fused int8 GEMM against the cached s8 weight pack. Runs
  // per sample — activation quantization parameters must depend only on
  // the sample itself so batched and serial execution agree bitwise.
  if (direct && groups_ == 1 && compute_bits_ == QuantBits::k8) {
    MURMUR_SPAN("kernel.int8.gemm", "kernel",
                obs::maybe_histogram("kernel.int8.gemm_ms"));
    const PackedGemmInt8& pw = packed_pointwise_int8(w);
    for (int b = 0; b < n; ++b)
      gemm_int8(pw, static_cast<int>(col_cols),
                input.raw() + static_cast<std::size_t>(b) * in_channels_ * h * wd,
                bias_.empty() ? nullptr : bias_.data(),
                out.raw() + static_cast<std::size_t>(b) * out_channels_ * oh * ow);
    return;
  }

  // Batched pointwise fast path: one weight matrix serves every sample, so
  // pack it once per weight epoch. gemm's per-element accumulation order
  // depends only on the k blocking — never on N or column position — so
  // folding the batch into the GEMM N dimension is bitwise identical to
  // running the samples one at a time.
  if (direct && groups_ == 1 && n > 1) {
    const PackedGemmA& pw = packed_pointwise(w);
    const std::size_t in_img = static_cast<std::size_t>(in_channels_) * h * wd;
    const std::size_t out_img =
        static_cast<std::size_t>(out_channels_) * col_cols;
    // Below gemm's column-block width the packed A panels are re-streamed
    // per call, so fusing the batch into one wide product amortizes them
    // (and the micro-panel padding) across every member; above it each
    // sample already fills whole column blocks and fusing would only add
    // the gather/scatter copies.
    constexpr std::size_t kFuseMaxCols = 1024;  // gemm.cpp kNC
    if (col_cols < kFuseMaxCols) {
      Workspace& ws = Workspace::tls();
      Workspace::Frame frame(ws);
      const std::size_t fused_cols = static_cast<std::size_t>(n) * col_cols;
      float* bf = ws.alloc(static_cast<std::size_t>(in_channels_) * fused_cols);
      for (int c = 0; c < in_channels_; ++c)
        for (int b = 0; b < n; ++b)
          std::memcpy(bf + static_cast<std::size_t>(c) * fused_cols +
                          static_cast<std::size_t>(b) * col_cols,
                      input.raw() + static_cast<std::size_t>(b) * in_img +
                          static_cast<std::size_t>(c) * col_cols,
                      col_cols * sizeof(float));
      float* cf = ws.alloc(static_cast<std::size_t>(out_channels_) * fused_cols);
      if (bias_.empty()) {
        std::memset(cf, 0, sizeof(float) * out_channels_ * fused_cols);
      } else {
        for (int o = 0; o < out_channels_; ++o) {
          const float bval = bias_[static_cast<std::size_t>(o)];
          float* row = cf + static_cast<std::size_t>(o) * fused_cols;
          for (std::size_t i = 0; i < fused_cols; ++i) row[i] = bval;
        }
      }
      gemm_packed(pw, static_cast<int>(fused_cols), bf, cf);
      for (int b = 0; b < n; ++b)
        for (int o = 0; o < out_channels_; ++o)
          std::memcpy(out.raw() + static_cast<std::size_t>(b) * out_img +
                          static_cast<std::size_t>(o) * col_cols,
                      cf + static_cast<std::size_t>(o) * fused_cols +
                          static_cast<std::size_t>(b) * col_cols,
                      col_cols * sizeof(float));
      return;
    }
    for (int b = 0; b < n; ++b) {
      const float* in_ptr = input.raw() + static_cast<std::size_t>(b) * in_img;
      float* out_ptr = out.raw() + static_cast<std::size_t>(b) * out_img;
      if (bias_.empty()) {
        std::memset(out_ptr, 0, sizeof(float) * out_channels_ * col_cols);
      } else {
        for (int o = 0; o < out_channels_; ++o) {
          const float bval = bias_[static_cast<std::size_t>(o)];
          float* row = out_ptr + static_cast<std::size_t>(o) * col_cols;
          for (std::size_t i = 0; i < col_cols; ++i) row[i] = bval;
        }
      }
      gemm_packed(pw, static_cast<int>(col_cols), in_ptr, out_ptr);
    }
    return;
  }

  Workspace& ws = Workspace::tls();
  Workspace::Frame frame(ws);
  float* col = direct ? nullptr : ws.alloc(col_rows * col_cols);
  for (int b = 0; b < n; ++b) {
    for (int g = 0; g < groups_; ++g) {
      const float* in_ptr =
          input.raw() + ((static_cast<std::size_t>(b) * in_channels_ +
                          static_cast<std::size_t>(g) * cpg) *
                         h * wd);
      const float* col_ptr = in_ptr;
      if (!direct) {
        im2col(in_ptr, cpg, h, wd, k, k, stride_, pad, col);
        col_ptr = col;
      }
      const float* w_ptr =
          w.raw() + static_cast<std::size_t>(g) * opg * cpg * k * k;
      float* out_ptr =
          out.raw() + ((static_cast<std::size_t>(b) * out_channels_ +
                        static_cast<std::size_t>(g) * opg) *
                       oh * ow);
      // GEMM accumulates, so seed the output with the bias (or zero).
      if (bias_.empty()) {
        std::memset(out_ptr, 0, sizeof(float) * opg * col_cols);
      } else {
        for (int o = 0; o < opg; ++o) {
          const float bval = bias_[static_cast<std::size_t>(g) * opg + o];
          float* row = out_ptr + static_cast<std::size_t>(o) * col_cols;
          for (std::size_t i = 0; i < col_cols; ++i) row[i] = bval;
        }
      }
      gemm(opg, static_cast<int>(col_rows), static_cast<int>(col_cols), w_ptr,
           col_ptr, out_ptr);
    }
  }
}

}  // namespace murmur::nn
