// Layer abstraction for the executable CNN substrate.
//
// Layers are inference-only (the paper's supernet is trained offline; here
// Stage-1 training is replaced by the calibrated accuracy model — see
// DESIGN.md §2). Each layer reports its FLOPs and output size so the cost
// model and the latency evaluator can account for compute and transfer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace murmur::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Run inference. Input/output are NCHW (or NC for the classifier tail).
  virtual Tensor forward(const Tensor& input) = 0;

  /// Output shape for a given input shape (shape inference without compute).
  virtual std::vector<int> out_shape(const std::vector<int>& in) const = 0;

  /// Floating point operations (multiply + add counted separately) for one
  /// forward pass at the given input shape.
  virtual double flops(const std::vector<int>& in) const = 0;

  /// Bytes of parameters held by this layer.
  virtual std::size_t param_bytes() const noexcept { return 0; }

  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace murmur::nn
