// Pointwise activations used by MobileNetV3: ReLU, hard-swish, hard-sigmoid.
#pragma once

#include <algorithm>

#include "nn/layer.h"

namespace murmur::nn {

enum class Activation { kIdentity, kRelu, kHardSwish, kHardSigmoid };

float apply_activation(Activation a, float x) noexcept;
/// In-place over a whole tensor.
void apply_activation(Activation a, Tensor& t) noexcept;
const char* activation_name(Activation a) noexcept;

/// Activation as a standalone layer (used inside Sequential).
class ActivationLayer final : public Layer {
 public:
  explicit ActivationLayer(Activation a) noexcept : act_(a) {}
  Tensor forward(const Tensor& input) override {
    Tensor out = input;
    apply_activation(act_, out);
    return out;
  }
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return in;
  }
  double flops(const std::vector<int>& in) const override {
    return static_cast<double>(shape_numel(in));
  }
  std::string name() const override { return activation_name(act_); }

 private:
  Activation act_;
};

}  // namespace murmur::nn
