#include "nn/se_block.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "nn/activations.h"

namespace murmur::nn {

SEBlock::SEBlock(int channels, int reduction, Rng& rng)
    : channels_(channels), hidden_(std::max(1, channels / reduction)) {
  w1_ = Tensor::kaiming({hidden_, channels_}, channels_, rng);
  w2_ = Tensor::kaiming({channels_, hidden_}, hidden_, rng);
}

Tensor SEBlock::forward(const Tensor& input) {
  assert(input.rank() == 4 && input.dim(1) == channels_);
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  Tensor out = input;
  std::vector<float> pooled(static_cast<std::size_t>(channels_));
  std::vector<float> hid(static_cast<std::size_t>(hidden_));
  std::vector<float> gate(static_cast<std::size_t>(channels_));
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int b = 0; b < n; ++b) {
    for (int c = 0; c < channels_; ++c) {
      float s = 0.0f;
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) s += input.at(b, c, y, x);
      pooled[c] = s * inv;
    }
    for (int i = 0; i < hidden_; ++i) {
      float s = 0.0f;
      for (int c = 0; c < channels_; ++c) s += w1_.at(i, c) * pooled[c];
      hid[i] = apply_activation(Activation::kRelu, s);
    }
    for (int c = 0; c < channels_; ++c) {
      float s = 0.0f;
      for (int i = 0; i < hidden_; ++i) s += w2_.at(c, i) * hid[i];
      gate[c] = apply_activation(Activation::kHardSigmoid, s);
    }
    for (int c = 0; c < channels_; ++c)
      for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) out.at(b, c, y, x) *= gate[c];
  }
  return out;
}

double SEBlock::flops(const std::vector<int>& in) const {
  const double fc = 2.0 * channels_ * hidden_ * 2.0;
  return static_cast<double>(shape_numel(in)) * 2.0 + fc * in[0];
}

std::size_t SEBlock::param_bytes() const noexcept {
  return w1_.bytes() + w2_.bytes();
}

std::string SEBlock::name() const {
  std::ostringstream os;
  os << "se(" << channels_ << "/" << hidden_ << ")";
  return os.str();
}

}  // namespace murmur::nn
