#include "nn/se_block.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "nn/activations.h"
#include "tensor/gemm.h"
#include "tensor/workspace.h"

namespace murmur::nn {

SEBlock::SEBlock(int channels, int reduction, Rng& rng)
    : channels_(channels), hidden_(std::max(1, channels / reduction)) {
  w1_ = Tensor::kaiming({hidden_, channels_}, channels_, rng);
  w2_ = Tensor::kaiming({channels_, hidden_}, hidden_, rng);
}

Tensor SEBlock::forward(const Tensor& input) {
  Tensor out = input;
  forward_into(input, out);
  return out;
}

void SEBlock::forward_into(const Tensor& input, Tensor& out) {
  assert(input.rank() == 4 && input.dim(1) == channels_);
  assert(out.shape() == input.shape());
  const int n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  const float inv = 1.0f / static_cast<float>(plane);
  // Scratch from the thread-local arena: forward may run concurrently on
  // the same block from the executor's tile workers.
  Workspace& ws = Workspace::tls();
  Workspace::Frame frame(ws);
  float* pooled = ws.alloc(static_cast<std::size_t>(channels_));
  float* hid = ws.alloc(static_cast<std::size_t>(hidden_));
  float* gate = ws.alloc(static_cast<std::size_t>(channels_));
  for (int b = 0; b < n; ++b) {
    const float* in_b = input.raw() +
                        static_cast<std::size_t>(b) * channels_ * plane;
    // Squeeze: per-channel mean over a contiguous plane.
    for (int c = 0; c < channels_; ++c) {
      const float* p = in_b + static_cast<std::size_t>(c) * plane;
      float lanes[8] = {};
      std::size_t i = 0;
      for (; i + 8 <= plane; i += 8)
        for (int l = 0; l < 8; ++l) lanes[l] += p[i + l];
      float s = 0.0f;
      for (int l = 0; l < 8; ++l) s += lanes[l];
      for (; i < plane; ++i) s += p[i];
      pooled[c] = s * inv;
    }
    // Excite: two small FCs.
    gemv(hidden_, channels_, w1_.raw(), pooled, nullptr, hid);
    for (int i = 0; i < hidden_; ++i)
      hid[i] = apply_activation(Activation::kRelu, hid[i]);
    gemv(channels_, hidden_, w2_.raw(), hid, nullptr, gate);
    for (int c = 0; c < channels_; ++c)
      gate[c] = apply_activation(Activation::kHardSigmoid, gate[c]);
    // Scale: channel-wise multiply over contiguous planes (reads the
    // input, writes the output, so `out` may alias `input`'s storage).
    float* out_b = out.raw() + static_cast<std::size_t>(b) * channels_ * plane;
    for (int c = 0; c < channels_; ++c) {
      const float g = gate[c];
      const float* p = in_b + static_cast<std::size_t>(c) * plane;
      float* q = out_b + static_cast<std::size_t>(c) * plane;
      for (std::size_t i = 0; i < plane; ++i) q[i] = p[i] * g;
    }
  }
}

double SEBlock::flops(const std::vector<int>& in) const {
  const double fc = 2.0 * channels_ * hidden_ * 2.0;
  return static_cast<double>(shape_numel(in)) * 2.0 + fc * in[0];
}

std::size_t SEBlock::param_bytes() const noexcept {
  return w1_.bytes() + w2_.bytes();
}

std::string SEBlock::name() const {
  std::ostringstream os;
  os << "se(" << channels_ << "/" << hidden_ << ")";
  return os.str();
}

}  // namespace murmur::nn
