// Ordered container of layers with whole-model shape/FLOP accounting.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace murmur::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  Sequential& add(LayerPtr layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto p = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *p;
    layers_.push_back(std::move(p));
    return ref;
  }

  std::size_t size() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) noexcept { return *layers_[i]; }
  const Layer& layer(std::size_t i) const noexcept { return *layers_[i]; }

  Tensor forward(const Tensor& input) override;
  std::vector<int> out_shape(const std::vector<int>& in) const override;
  double flops(const std::vector<int>& in) const override;
  std::size_t param_bytes() const noexcept override;
  std::string name() const override { return "sequential"; }

  /// Per-layer (flops, output-bytes) profile for a given input shape;
  /// consumed by cost models.
  struct LayerProfile {
    std::string name;
    double flops = 0.0;
    std::size_t out_elements = 0;
    std::size_t param_bytes = 0;
  };
  std::vector<LayerProfile> profile(const std::vector<int>& in) const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace murmur::nn
