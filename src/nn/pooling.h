// Pooling layers: global average pool (MobileNetV3 head) and average pool.
#pragma once

#include "nn/layer.h"

namespace murmur::nn {

/// NCHW -> NC11 mean over the spatial dims.
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return {in[0], in[1], 1, 1};
  }
  double flops(const std::vector<int>& in) const override {
    return static_cast<double>(shape_numel(in));
  }
  std::string name() const override { return "gap"; }
};

/// Non-overlapping kxk average pooling (stride == k).
class AvgPool final : public Layer {
 public:
  explicit AvgPool(int k) noexcept : k_(k) {}
  Tensor forward(const Tensor& input) override;
  std::vector<int> out_shape(const std::vector<int>& in) const override {
    return {in[0], in[1], in[2] / k_, in[3] / k_};
  }
  double flops(const std::vector<int>& in) const override {
    return static_cast<double>(shape_numel(in));
  }
  std::string name() const override { return "avgpool" + std::to_string(k_); }

 private:
  int k_;
};

}  // namespace murmur::nn
