#include "tensor/gemm_int8.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/workspace.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VNNI__)
#include <immintrin.h>
#define MURMUR_INT8_VNNI 1
#else
#define MURMUR_INT8_VNNI 0
#endif

namespace murmur {
namespace {

// Register tile: 8 output channels × 32 pixels (two 16-lane i32 vectors),
// 16 live accumulators + 2 activation vectors + 1 weight broadcast.
constexpr int kMR8 = 8;
constexpr int kNR8 = 32;

// Round-to-nearest-even via the float magic number (1.5 * 2^23): adding it
// pushes the value into the ulp==1 range, so the add itself performs the
// rounding and the subtract is exact. Same idiom as tensor/quantize.cpp.
constexpr float kRound = 12582912.0f;

inline std::uint8_t* alloc_bytes(Workspace& ws, std::size_t bytes) {
  return reinterpret_cast<std::uint8_t*>(ws.alloc((bytes + 3) / 4));
}

}  // namespace

ActQuantU8 choose_act_quant_u8(const float* x, std::size_t n) noexcept {
  float lo = 0.0f, hi = 0.0f;  // widened to include 0: padding stays exact
  std::size_t i = 0;
#if MURMUR_INT8_VNNI
  // Masked min/max scan: non-finite lanes (NaN, +-inf) are simply excluded
  // from the running bounds, matching the scalar `isfinite` skip.
  if (n >= 16) {
    __m512 vlo = _mm512_setzero_ps(), vhi = _mm512_setzero_ps();
    const __m512 vinf = _mm512_set1_ps(std::numeric_limits<float>::infinity());
    for (; i + 16 <= n; i += 16) {
      const __m512 v = _mm512_loadu_ps(x + i);
      const __mmask16 fin =
          _mm512_cmp_ps_mask(_mm512_abs_ps(v), vinf, _CMP_LT_OQ);
      vlo = _mm512_mask_min_ps(vlo, fin, vlo, v);
      vhi = _mm512_mask_max_ps(vhi, fin, vhi, v);
    }
    lo = _mm512_reduce_min_ps(vlo);
    hi = _mm512_reduce_max_ps(vhi);
  }
#endif
  for (; i < n; ++i) {
    const float v = x[i];
    if (!std::isfinite(v)) continue;
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  ActQuantU8 aq;
  const float range = hi - lo;
  if (!(range > 0.0f) || !std::isfinite(range)) return aq;  // scale 1, zp 0
  aq.scale = range / 255.0f;
  const float zp = (-lo / aq.scale + kRound) - kRound;
  aq.zero_point = std::clamp(static_cast<std::int32_t>(zp), 0, 255);
  return aq;
}

void quantize_u8(const float* x, std::size_t n, const ActQuantU8& aq,
                 std::uint8_t* q) noexcept {
  const float inv = 1.0f / aq.scale;
  const float zp = static_cast<float>(aq.zero_point);
#if MURMUR_INT8_VNNI
  // Vector path: fused multiply-add, clamp, round-to-nearest-even via
  // CVTPS2DQ (the default rounding mode — same result as the magic-number
  // idiom for values already clamped to [0, 255]). maxps with the clamp
  // bound in the FIRST operand maps NaN inputs to 0.
  const __m512 vinv = _mm512_set1_ps(inv), vzp = _mm512_set1_ps(zp);
  const __m512 vmax = _mm512_set1_ps(255.0f), vzero = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 v = _mm512_fmadd_ps(_mm512_loadu_ps(x + i), vinv, vzp);
    v = _mm512_min_ps(_mm512_max_ps(vzero, v), vmax);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i),
                     _mm512_cvtepi32_epi8(_mm512_cvtps_epi32(v)));
  }
  if (i < n) {
    const __mmask16 m =
        static_cast<__mmask16>((1u << (n - i)) - 1u);
    __m512 v = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, x + i), vinv, vzp);
    v = _mm512_min_ps(_mm512_max_ps(vzero, v), vmax);
    _mm512_mask_cvtepi32_storeu_epi8(q + i, m, _mm512_cvtps_epi32(v));
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    float v = x[i] * inv + zp;
    v = std::min(std::max(0.0f, v), 255.0f);
    q[i] = static_cast<std::uint8_t>((v + kRound) - kRound);
  }
#endif
}

void PackedGemmInt8::pack(int m, int k, const float* a) {
  assert(m > 0 && k > 0);
  m_ = m;
  k_ = k;
  kp_ = (k + 3) & ~3;
  codes_.assign(static_cast<std::size_t>(m) * kp_, 0);
  scale_.assign(static_cast<std::size_t>(m), 1.0f);
  sum_.assign(static_cast<std::size_t>(m), 0);
  for (int o = 0; o < m; ++o) {
    const float* row = a + static_cast<std::size_t>(o) * k;
    float amax = 0.0f;
    for (int i = 0; i < k; ++i) {
      const float v = std::fabs(row[i]);
      if (std::isfinite(v) && v > amax) amax = v;
    }
    const float s = amax / 127.0f;
    // Rows whose magnitude underflows quantize to all-zero codes with a
    // benign scale of 1 — their true contribution is below any tolerance.
    if (!(s > 1e-35f) || !std::isfinite(s)) continue;
    scale_[static_cast<std::size_t>(o)] = s;
    const float inv = 127.0f / amax;
    std::int8_t* dst = codes_.data() + static_cast<std::size_t>(o) * kp_;
    std::int32_t rs = 0;
    for (int i = 0; i < k; ++i) {
      float v = row[i] * inv;
      v = std::min(std::max(v, -127.0f), 127.0f);
      const auto q = static_cast<std::int32_t>((v + kRound) - kRound);
      dst[i] = static_cast<std::int8_t>(q);
      rs += q;
    }
    sum_[static_cast<std::size_t>(o)] = rs;
  }
  packed_ = true;
}

#if MURMUR_INT8_VNNI

namespace {

/// MR×32 VNNI micro-kernel over one packed column panel, dequant epilogue
/// fused. The panel holds [kg][2][16 lanes][4 k-bytes] (one aligned
/// 64-byte vector per k-group per 16-pixel half); weights broadcast one s8
/// dword (4 k-values of one output channel) per VPDPBUSD. `scale` and
/// `corr` are the per-row premultiplied dequant factors (row_scale *
/// act_scale and zp * row_sum); `bs` is the bias (zeros when absent). The
/// accumulators dequantize straight out of registers — full tiles store to
/// C directly, remainder tiles (jw < 32) bounce through a local spill.
template <int MR>
void kernel_i8(const std::int8_t* arow, int kp, int kg,
               const std::uint8_t* panel, const float* scale,
               const float* corr, const float* bs, float* c, int ldc,
               int jw) {
  __m512i acc[MR][2];
  for (int r = 0; r < MR; ++r)
    acc[r][0] = acc[r][1] = _mm512_setzero_si512();
  for (int g = 0; g < kg; ++g) {
    const __m512i b0 =
        _mm512_load_si512(panel + static_cast<std::size_t>(g) * 128);
    const __m512i b1 =
        _mm512_load_si512(panel + static_cast<std::size_t>(g) * 128 + 64);
    for (int r = 0; r < MR; ++r) {
      std::int32_t wdw;
      std::memcpy(&wdw, arow + static_cast<std::size_t>(r) * kp + 4 * g, 4);
      const __m512i wv = _mm512_set1_epi32(wdw);
      acc[r][0] = _mm512_dpbusd_epi32(acc[r][0], b0, wv);
      acc[r][1] = _mm512_dpbusd_epi32(acc[r][1], b1, wv);
    }
  }
  alignas(64) float tail[kNR8];
  for (int r = 0; r < MR; ++r) {
    const __m512 scv = _mm512_set1_ps(scale[r]);
    const __m512 corrv = _mm512_set1_ps(corr[r]);
    const __m512 bsv = _mm512_set1_ps(bs[r]);
    const __m512 v0 = _mm512_fmadd_ps(
        _mm512_sub_ps(_mm512_cvtepi32_ps(acc[r][0]), corrv), scv, bsv);
    const __m512 v1 = _mm512_fmadd_ps(
        _mm512_sub_ps(_mm512_cvtepi32_ps(acc[r][1]), corrv), scv, bsv);
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    if (jw == kNR8) {
      _mm512_storeu_ps(crow, v0);
      _mm512_storeu_ps(crow + 16, v1);
    } else {
      _mm512_store_ps(tail, v0);
      _mm512_store_ps(tail + 16, v1);
      std::memcpy(crow, tail, static_cast<std::size_t>(jw) * sizeof(float));
    }
  }
}

using KernelFn = void (*)(const std::int8_t*, int, int, const std::uint8_t*,
                          const float*, const float*, const float*, float*,
                          int, int);
constexpr KernelFn kKernels[kMR8] = {
    kernel_i8<1>, kernel_i8<2>, kernel_i8<3>, kernel_i8<4>,
    kernel_i8<5>, kernel_i8<6>, kernel_i8<7>, kernel_i8<8>,
};

}  // namespace

void gemm_int8(const PackedGemmInt8& a, int n, const float* b,
               const float* bias, float* c) {
  assert(a.packed_);
  const int m = a.m_, k = a.k_, kp = a.kp_;
  const int kg = kp / 4;
  if (m <= 0 || n <= 0) return;

  Workspace& ws = Workspace::tls();
  Workspace::Frame frame(ws);

  // The quantized B matrix carries enough slack past its k*n payload that
  // the packing transpose can always issue full 32-byte row loads: bytes
  // read past a row's end land in a panel column >= jw whose accumulator
  // is never stored, and bytes read from k-padding rows pair with zero
  // weight codes — stray values are arithmetically inert either way.
  const std::size_t bn = static_cast<std::size_t>(k) * n;
  const std::size_t slack = static_cast<std::size_t>(kp - k) * n + kNR8;
  const ActQuantU8 aq = choose_act_quant_u8(b, bn);
  std::uint8_t* bq = alloc_bytes(ws, bn + slack);
  quantize_u8(b, bn, aq, bq);

  std::uint8_t* panel = alloc_bytes(ws, static_cast<std::size_t>(kg) * 128);

  // Premultiply the per-row dequant factors once so the fused kernel
  // epilogue is three broadcast loads per row: combined scale
  // (row_scale * act_scale), zero-point correction (zp * row_sum), bias.
  const float zp = static_cast<float>(aq.zero_point);
  float* sc = ws.alloc(static_cast<std::size_t>(m) * 3);
  float* corr = sc + m;
  float* bs = corr + m;
  for (int o = 0; o < m; ++o) {
    sc[o] = a.scale_[static_cast<std::size_t>(o)] * aq.scale;
    corr[o] = zp * static_cast<float>(a.sum_[static_cast<std::size_t>(o)]);
    bs[o] = bias ? bias[o] : 0.0f;
  }

  for (int jc = 0; jc < n; jc += kNR8) {
    const int jw = std::min(kNR8, n - jc);
    // Pack the column block pixel-major in 4-deep k groups: a 4x32 byte
    // transpose per group (unpack bytes/words, then recombine the 128-bit
    // lanes so panel bytes run in column order).
    for (int g = 0; g < kg; ++g) {
      std::uint8_t* dst = panel + static_cast<std::size_t>(g) * 128;
      const std::uint8_t* r0 = bq + static_cast<std::size_t>(4 * g) * n + jc;
      const __m256i a0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0));
      const __m256i a1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0 + n));
      const __m256i a2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0 + 2 * static_cast<std::size_t>(n)));
      const __m256i a3 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0 + 3 * static_cast<std::size_t>(n)));
      const __m256i t0 = _mm256_unpacklo_epi8(a0, a1);
      const __m256i t1 = _mm256_unpackhi_epi8(a0, a1);
      const __m256i t2 = _mm256_unpacklo_epi8(a2, a3);
      const __m256i t3 = _mm256_unpackhi_epi8(a2, a3);
      const __m256i u0 = _mm256_unpacklo_epi16(t0, t2);  // cols 0-3 | 16-19
      const __m256i u1 = _mm256_unpackhi_epi16(t0, t2);  // cols 4-7 | 20-23
      const __m256i u2 = _mm256_unpacklo_epi16(t1, t3);  // cols 8-11 | 24-27
      const __m256i u3 = _mm256_unpackhi_epi16(t1, t3);  // cols 12-15 | 28-31
      _mm256_store_si256(reinterpret_cast<__m256i*>(dst),
                         _mm256_permute2x128_si256(u0, u1, 0x20));
      _mm256_store_si256(reinterpret_cast<__m256i*>(dst + 32),
                         _mm256_permute2x128_si256(u2, u3, 0x20));
      _mm256_store_si256(reinterpret_cast<__m256i*>(dst + 64),
                         _mm256_permute2x128_si256(u0, u1, 0x31));
      _mm256_store_si256(reinterpret_cast<__m256i*>(dst + 96),
                         _mm256_permute2x128_si256(u2, u3, 0x31));
    }
    for (int ir = 0; ir < m; ir += kMR8) {
      const int mr = std::min(kMR8, m - ir);
      kKernels[mr - 1](a.codes_.data() + static_cast<std::size_t>(ir) * kp,
                       kp, kg, panel, sc + ir, corr + ir, bs + ir,
                       c + static_cast<std::size_t>(ir) * n + jc, n, jw);
    }
  }
}

#else  // !MURMUR_INT8_VNNI

void gemm_int8(const PackedGemmInt8& a, int n, const float* b,
               const float* bias, float* c) {
  assert(a.packed_);
  const int m = a.m_, k = a.k_, kp = a.kp_;
  if (m <= 0 || n <= 0) return;

  Workspace& ws = Workspace::tls();
  Workspace::Frame frame(ws);

  const std::size_t bn = static_cast<std::size_t>(k) * n;
  const ActQuantU8 aq = choose_act_quant_u8(b, bn);
  std::uint8_t* bq = alloc_bytes(ws, bn);
  quantize_u8(b, bn, aq, bq);

  const float zp = static_cast<float>(aq.zero_point);
  for (int o = 0; o < m; ++o) {
    const std::int8_t* arow = a.codes_.data() + static_cast<std::size_t>(o) * kp;
    const float sc = a.scale_[static_cast<std::size_t>(o)] * aq.scale;
    const float corr =
        zp * static_cast<float>(a.sum_[static_cast<std::size_t>(o)]);
    const float bs = bias ? bias[o] : 0.0f;
    float* crow = c + static_cast<std::size_t>(o) * n;
    for (int j = 0; j < n; ++j) {
      std::int32_t s32 = 0;
      for (int i = 0; i < k; ++i)
        s32 += static_cast<std::int32_t>(arow[i]) *
               static_cast<std::int32_t>(bq[static_cast<std::size_t>(i) * n + j]);
      crow[j] = (static_cast<float>(s32) - corr) * sc + bs;
    }
  }
}

#endif  // MURMUR_INT8_VNNI

}  // namespace murmur
