// Per-thread, grow-only scratch arena for kernel temporaries.
//
// The compute kernels (im2col columns, packed GEMM panels, pooled SE
// vectors) need short-lived float buffers on every forward pass. Heap
// allocating them per call dominates small-layer latency and defeats the
// paper's millisecond-switching story, so scratch comes from a bump arena
// instead: each thread owns a chain of chunks, allocation is a pointer
// bump, and a RAII `Frame` rewinds everything on scope exit. Chunks are
// never freed while the thread lives, so after the first forward pass of a
// given shape the steady state performs zero heap allocations.
//
// Thread safety: `Workspace::tls()` hands every thread (executor tile
// workers, the GEMM kernel pool, the main thread) its own arena, so no
// synchronization is needed. Pointers returned by `alloc` are stable until
// the enclosing Frame unwinds; frames nest LIFO like the call stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace murmur {

class Workspace {
 public:
  /// Alignment of every returned pointer (AVX-512 friendly).
  static constexpr std::size_t kAlign = 64;
  /// Floats in the first chunk; later chunks double.
  static constexpr std::size_t kMinChunkFloats = 1u << 16;  // 256 KiB

  Workspace() = default;
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena.
  static Workspace& tls();

  /// RAII mark/rewind: everything alloc'd after construction is released
  /// (made reusable, not freed) when the frame is destroyed.
  class Frame {
   public:
    explicit Frame(Workspace& ws) noexcept
        : ws_(ws), chunk_(ws.active_), used_(ws.active_used()) {}
    ~Frame() { ws_.rewind(chunk_, used_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Workspace& ws_;
    std::size_t chunk_;
    std::size_t used_;
  };

  /// 64-byte-aligned buffer of `n` floats, valid until the enclosing Frame
  /// rewinds. Contents are uninitialized.
  float* alloc(std::size_t n);

  /// Number of chunk mallocs performed so far (monotone). A steady-state
  /// workload keeps this constant — the hook the zero-allocation tests use.
  std::uint64_t chunk_allocations() const noexcept { return chunk_allocs_; }
  /// Total bytes of backing storage currently held.
  std::size_t capacity_bytes() const noexcept;
  /// Bytes currently handed out (inside live frames).
  std::size_t used_bytes() const noexcept;

  /// Free every chunk (for tests; invalidates outstanding pointers).
  void release();

 private:
  struct Chunk {
    float* data = nullptr;
    std::size_t cap = 0;   // floats
    std::size_t used = 0;  // floats
  };

  std::size_t active_used() const noexcept {
    return active_ < chunks_.size() ? chunks_[active_].used : 0;
  }
  void rewind(std::size_t chunk, std::size_t used) noexcept;

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::uint64_t chunk_allocs_ = 0;
};

}  // namespace murmur
