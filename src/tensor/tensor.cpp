#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace murmur {

std::size_t shape_numel(std::span<const int> shape) noexcept {
  std::size_t n = 1;
  for (int d : shape) n *= static_cast<std::size_t>(d);
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  for ([[maybe_unused]] int d : shape_) assert(d > 0);
  data_.assign(shape_numel(shape_), 0.0f);
}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, Rng& rng, float mean,
                     float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_)
    v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::kaiming(std::vector<int> shape, int fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(std::max(1, fan_in)));
  return randn(std::move(shape), rng, 0.0f, stddev);
}

void Tensor::fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  assert(shape_numel(new_shape) == size());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

Tensor& Tensor::add_(const Tensor& other) {
  assert(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float s) noexcept {
  for (auto& v : data_) v *= s;
  return *this;
}

float Tensor::sum() const noexcept {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::max_abs() const noexcept {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool Tensor::allclose(const Tensor& other, float tol) const noexcept {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

Tensor Tensor::crop(int h0, int w0, int hh, int ww) const {
  assert(rank() == 4);
  assert(h0 >= 0 && w0 >= 0 && h0 + hh <= dim(2) && w0 + ww <= dim(3));
  Tensor out({dim(0), dim(1), hh, ww});
  for (int n = 0; n < dim(0); ++n)
    for (int c = 0; c < dim(1); ++c)
      for (int h = 0; h < hh; ++h)
        for (int w = 0; w < ww; ++w)
          out.at(n, c, h, w) = at(n, c, h0 + h, w0 + w);
  return out;
}

Tensor Tensor::pad(int top, int bottom, int left, int right) const {
  assert(rank() == 4);
  Tensor out({dim(0), dim(1), dim(2) + top + bottom, dim(3) + left + right});
  for (int n = 0; n < dim(0); ++n)
    for (int c = 0; c < dim(1); ++c)
      for (int h = 0; h < dim(2); ++h)
        for (int w = 0; w < dim(3); ++w)
          out.at(n, c, h + top, w + left) = at(n, c, h, w);
  return out;
}

Tensor Tensor::slice_channels(int c0, int cc) const {
  assert(rank() == 4);
  assert(c0 >= 0 && c0 + cc <= dim(1));
  Tensor out({dim(0), cc, dim(2), dim(3)});
  for (int n = 0; n < dim(0); ++n)
    for (int c = 0; c < cc; ++c)
      for (int h = 0; h < dim(2); ++h)
        for (int w = 0; w < dim(3); ++w)
          out.at(n, c, h, w) = at(n, c0 + c, h, w);
  return out;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i)
    os << (i ? "x" : "") << shape_[i];
  os << ']';
  return os.str();
}

}  // namespace murmur
