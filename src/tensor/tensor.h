// Dense float tensor in NCHW layout.
//
// This is the numeric substrate for the executable supernet: rank 1, 2 or 4,
// contiguous row-major storage, value semantics. It favours clarity over
// peak throughput — the heavy path (convolution) goes through im2col + GEMM
// in src/tensor/gemm.*.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace murmur {

class Tensor {
 public:
  Tensor() = default;
  /// Construct zero-filled tensor with the given shape (each dim > 0).
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);
  /// I.i.d. N(mean, stddev) entries.
  static Tensor randn(std::vector<int> shape, Rng& rng, float mean = 0.f,
                      float stddev = 1.f);
  /// Kaiming-style init for a weight of `fan_in` inputs.
  static Tensor kaiming(std::vector<int> shape, int fan_in, Rng& rng);

  const std::vector<int>& shape() const noexcept { return shape_; }
  int dim(std::size_t i) const noexcept {
    return i < shape_.size() ? shape_[i] : 1;
  }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(float); }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }
  float* raw() noexcept { return data_.data(); }
  const float* raw() const noexcept { return data_.data(); }

  // --- element access -------------------------------------------------
  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  /// 4-D NCHW access.
  float& at(int n, int c, int h, int w) noexcept {
    assert(rank() == 4);
    return data_[offset4(n, c, h, w)];
  }
  float at(int n, int c, int h, int w) const noexcept {
    assert(rank() == 4);
    return data_[offset4(n, c, h, w)];
  }
  /// 2-D (rows, cols) access.
  float& at(int r, int c) noexcept {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r) * shape_[1] + c];
  }
  float at(int r, int c) const noexcept {
    assert(rank() == 2);
    return data_[static_cast<std::size_t>(r) * shape_[1] + c];
  }

  // --- whole-tensor ops -----------------------------------------------
  void fill(float v) noexcept;
  Tensor reshaped(std::vector<int> new_shape) const;
  /// Elementwise sum; shapes must match exactly.
  Tensor& add_(const Tensor& other);
  Tensor& scale_(float s) noexcept;
  float sum() const noexcept;
  float max_abs() const noexcept;
  /// True if shapes equal and all entries within `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5f) const noexcept;

  /// Crop NCHW spatially to rows [h0, h0+hh), cols [w0, w0+ww).
  Tensor crop(int h0, int w0, int hh, int ww) const;
  /// Zero-pad NCHW spatially by (top, bottom, left, right).
  Tensor pad(int top, int bottom, int left, int right) const;
  /// Slice channels [c0, c0+cc).
  Tensor slice_channels(int c0, int cc) const;

  std::string shape_str() const;

 private:
  std::size_t offset4(int n, int c, int h, int w) const noexcept {
    return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
               shape_[3] +
           w;
  }
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape.
std::size_t shape_numel(std::span<const int> shape) noexcept;

}  // namespace murmur
