// Spatial tiling for FDSP-style partitioned convolution (ADCNN, ICPP'20).
//
// A feature map is split into an R×C grid of tiles. Under Fully Decomposable
// Spatial Partition each tile is *zero-padded* at its interior edges instead
// of exchanging halo rows with neighbours, which removes all inter-tile
// communication at the cost of a small accuracy perturbation — exactly the
// accuracy/latency trade-off Murmuration's NAS search space exposes.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace murmur {

/// Partition grid. 1×1 means "not partitioned".
struct PartitionGrid {
  int rows = 1;
  int cols = 1;
  int tiles() const noexcept { return rows * cols; }
  bool operator==(const PartitionGrid&) const = default;
};

/// Geometry of one tile inside the full map.
struct TileExtent {
  int h0 = 0, w0 = 0;  // top-left corner in the full map
  int h = 0, w = 0;    // tile size (un-padded)
};

/// Compute the R×C tile extents covering an H×W map. Remainder rows/cols go
/// to the last tile in each dimension.
std::vector<TileExtent> tile_extents(int height, int width, PartitionGrid grid);

/// Split an NCHW tensor into grid.tiles() tiles, each zero-padded by `halo`
/// pixels on every side (FDSP: interior edges get zeros where a halo
/// exchange would have provided neighbour data). Tiles are returned in
/// row-major grid order.
std::vector<Tensor> split_fdsp(const Tensor& input, PartitionGrid grid,
                               int halo);

/// Merge per-tile outputs (each already cropped of its padding) back into a
/// full map. `extents` must describe the *output* geometry of each tile.
Tensor merge_tiles(const std::vector<Tensor>& tiles,
                   const std::vector<TileExtent>& extents, int channels,
                   int height, int width);

/// Bytes a halo-exchange implementation would move between neighbouring
/// tiles per layer (for the FDSP-vs-halo ablation): each interior edge moves
/// `halo` rows/cols of `channels` floats in both directions.
std::size_t halo_exchange_bytes(int height, int width, int channels,
                                PartitionGrid grid, int halo) noexcept;

}  // namespace murmur
