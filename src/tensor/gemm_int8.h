// Int8 GEMM micro-kernel: the compute side of the 8-bit quantization axis.
//
// The wire codec (tensor/quantize.h) already makes 8-bit activations cheap
// to *ship*; this kernel makes them cheap to *run*. Weights are quantized
// symmetrically to s8 with a per-output-channel scale (packed once per
// weight epoch, like PackedGemmA), activations are quantized per call to
// asymmetric u8 whose range is widened to include zero — so conv zero
// padding maps to the zero point exactly — and the contraction accumulates
// u8×s8 products into s32. On AVX512-VNNI machines the inner loop is
// VPDPBUSD (4 MACs per lane per instruction, 4× the fp32 FMA rate); a
// plain integer fallback produces bit-identical accumulators elsewhere.
//
// Dequantization is fused into the epilogue:
//
//   C[o][j] = bias[o] + row_scale[o] * act_scale * (acc[o][j]
//                                                   - zp * row_sum[o])
//
// where row_sum[o] is the precomputed sum of the row's s8 codes — the
// standard zero-point correction, which also cancels the contribution of
// padded (zero) activations. Integer accumulation is exact and therefore
// independent of evaluation order, so results are reproducible across
// column blocking and batching — the property the batched-serving bitwise
// differentials rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace murmur {

/// Per-tensor asymmetric u8 activation quantization: x ≈ scale * (q - zp).
/// zp lies in [0, 255] and x == 0 always maps to q == zp exactly.
struct ActQuantU8 {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

/// Derive scale/zero-point from the data range, widened to include 0.
/// Non-finite values are ignored; degenerate ranges (empty, constant,
/// overflowing) collapse to scale = 1 so the mapping stays well defined.
ActQuantU8 choose_act_quant_u8(const float* x, std::size_t n) noexcept;

/// q = clamp(round(x / scale) + zero_point, 0, 255), elementwise.
void quantize_u8(const float* x, std::size_t n, const ActQuantU8& aq,
                 std::uint8_t* q) noexcept;

/// A weight matrix quantized to s8 with per-row (= per-output-channel)
/// symmetric scales, k padded to a multiple of 4 so the kernel can consume
/// whole VNNI dwords. Pack once per weight epoch; reuse across calls.
class PackedGemmInt8 {
 public:
  /// Quantize + repack `a` (row-major m×k, contiguous, fp32).
  void pack(int m, int k, const float* a);

  bool matches(int m, int k) const noexcept {
    return packed_ && m_ == m && k_ == k;
  }
  int m() const noexcept { return m_; }
  int k() const noexcept { return k_; }
  /// Per-row dequantization scale (w ≈ row_scale[o] * code).
  const float* row_scale() const noexcept { return scale_.data(); }
  /// Per-row sum of s8 codes (the zero-point correction term).
  const std::int32_t* row_sum() const noexcept { return sum_.data(); }

 private:
  friend void gemm_int8(const PackedGemmInt8& a, int n, const float* b,
                        const float* bias, float* c);
  int m_ = 0;
  int k_ = 0;
  int kp_ = 0;  // k rounded up to a multiple of 4 (zero-padded codes)
  bool packed_ = false;
  std::vector<std::int8_t> codes_;     // [m][kp_], row-major
  std::vector<float> scale_;           // [m]
  std::vector<std::int32_t> sum_;      // [m]
};

/// C(m×n) = bias ⊕ dequant(Aq(m×k) · quant(B(k×n))). B is row-major fp32;
/// it is quantized to u8 inside the call (per-call scale/zero-point from
/// its own range) and C is fully overwritten — unlike `gemm`, there is no
/// accumulate-into contract, because the dequant epilogue owns the output.
/// `bias` may be null (treated as zero). Scratch comes from the calling
/// thread's Workspace arena: zero heap allocation in steady state.
void gemm_int8(const PackedGemmInt8& a, int n, const float* b,
               const float* bias, float* c);

}  // namespace murmur
