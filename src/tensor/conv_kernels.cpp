#include "tensor/conv_kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/workspace.h"

#if defined(_MSC_VER)
#define MURMUR_RESTRICT __restrict
#else
#define MURMUR_RESTRICT __restrict__
#endif

// The vectorized int8 depthwise kernel needs VNNI for the u8×s8 dot
// products and VBMI for the byte-granular sliding-window shuffle.
#if defined(__AVX512F__) && defined(__AVX512BW__) && \
    defined(__AVX512VNNI__) && defined(__AVX512VBMI__)
#include <immintrin.h>
#define MURMUR_INT8_DW_VEC 1
#else
#define MURMUR_INT8_DW_VEC 0
#endif

namespace murmur::kernels {

namespace {

/// Accumulate one bounds-checked output pixel (border path).
inline float border_pixel(const float* MURMUR_RESTRICT ic,
                          const float* MURMUR_RESTRICT wc, int w, int k,
                          int iy0, int ix0, int ky_lo, int ky_hi) {
  const int kx_lo = std::max(0, -ix0);
  const int kx_hi = std::min(k, w - ix0);
  float acc = 0.0f;
  for (int ky = ky_lo; ky < ky_hi; ++ky) {
    const float* MURMUR_RESTRICT row =
        ic + static_cast<std::size_t>(iy0 + ky) * w + ix0;
    const float* MURMUR_RESTRICT wrow = wc + static_cast<std::size_t>(ky) * k;
    for (int kx = kx_lo; kx < kx_hi; ++kx) acc += wrow[kx] * row[kx];
  }
  return acc;
}

}  // namespace

namespace {

/// Stride-1 depthwise: for each weight tap (ky,kx), the set of outputs the
/// tap touches is a contiguous sub-rectangle of the plane, so the whole
/// convolution decomposes into k·k shifted axpy sweeps — unit-stride,
/// branch-free, fully vectorizable, borders included.
void depthwise_stride1(const float* MURMUR_RESTRICT ic,
                       const float* MURMUR_RESTRICT wc, int h, int w, int k,
                       int pad, float bias_v, int oh, int ow,
                       float* MURMUR_RESTRICT oc) {
  for (int i = 0; i < oh * ow; ++i) oc[i] = bias_v;
  for (int ky = 0; ky < k; ++ky) {
    // oy values with iy = oy - pad + ky inside [0, h).
    const int oy_lo = std::max(0, pad - ky);
    const int oy_hi = std::min(oh, h + pad - ky);
    for (int kx = 0; kx < k; ++kx) {
      const int ox_lo = std::max(0, pad - kx);
      const int ox_hi = std::min(ow, w + pad - kx);
      const int span = ox_hi - ox_lo;
      if (span <= 0 || oy_hi <= oy_lo) continue;
      const float wv = wc[ky * k + kx];
      const float* MURMUR_RESTRICT ip =
          ic + static_cast<std::size_t>(oy_lo - pad + ky) * w +
          (ox_lo - pad + kx);
      float* MURMUR_RESTRICT op =
          oc + static_cast<std::size_t>(oy_lo) * ow + ox_lo;
      for (int oy = oy_lo; oy < oy_hi; ++oy, ip += w, op += ow)
        for (int x = 0; x < span; ++x) op[x] += wv * ip[x];
    }
  }
}

}  // namespace

void depthwise_conv2d(const float* in, int channels, int h, int w,
                      const float* weights, const float* bias, int k,
                      int stride, int pad, float* out) {
  const int oh = conv_out_size(h, k, stride, pad);
  const int ow = conv_out_size(w, k, stride, pad);
  if (stride == 1) {
    for (int c = 0; c < channels; ++c)
      depthwise_stride1(in + static_cast<std::size_t>(c) * h * w,
                        weights + static_cast<std::size_t>(c) * k * k, h, w, k,
                        pad, bias ? bias[c] : 0.0f, oh, ow,
                        out + static_cast<std::size_t>(c) * oh * ow);
    return;
  }
  // Interior output range along x: every kx tap lands inside [0, w).
  const int x_lo = std::min((pad + stride - 1) / stride, ow);
  const int x_hi =
      std::clamp(w - k + pad >= 0 ? (w - k + pad) / stride + 1 : 0, x_lo, ow);

  for (int c = 0; c < channels; ++c) {
    const float* MURMUR_RESTRICT ic =
        in + static_cast<std::size_t>(c) * h * w;
    const float* MURMUR_RESTRICT wc =
        weights + static_cast<std::size_t>(c) * k * k;
    float* MURMUR_RESTRICT oc = out + static_cast<std::size_t>(c) * oh * ow;
    const float b = bias ? bias[c] : 0.0f;

    for (int oy = 0; oy < oh; ++oy) {
      float* MURMUR_RESTRICT orow = oc + static_cast<std::size_t>(oy) * ow;
      const int iy0 = oy * stride - pad;
      const int ky_lo = std::max(0, -iy0);
      const int ky_hi = std::min(k, h - iy0);
      for (int ox = 0; ox < ow; ++ox) orow[ox] = b;

      // Left/right borders: clamped kx range per pixel, no inner-loop ifs.
      for (int ox = 0; ox < x_lo; ++ox)
        orow[ox] +=
            border_pixel(ic, wc, w, k, iy0, ox * stride - pad, ky_lo, ky_hi);
      for (int ox = x_hi; ox < ow; ++ox)
        orow[ox] +=
            border_pixel(ic, wc, w, k, iy0, ox * stride - pad, ky_lo, ky_hi);

      // Interior: full kx range guaranteed in bounds, no per-tap checks.
      for (int ox = x_lo; ox < x_hi; ++ox) {
        const int ix0 = ox * stride - pad;
        float acc = 0.0f;
        for (int ky = ky_lo; ky < ky_hi; ++ky) {
          const float* MURMUR_RESTRICT row =
              ic + static_cast<std::size_t>(iy0 + ky) * w + ix0;
          const float* MURMUR_RESTRICT wrow =
              wc + static_cast<std::size_t>(ky) * k;
          for (int kx = 0; kx < k; ++kx) acc += wrow[kx] * row[kx];
        }
        orow[ox] += acc;
      }
    }
  }
}

void depthwise_conv2d_ref(const float* in, int channels, int h, int w,
                          const float* weights, const float* bias, int k,
                          int stride, int pad, float* out) {
  const int oh = conv_out_size(h, k, stride, pad);
  const int ow = conv_out_size(w, k, stride, pad);
  for (int c = 0; c < channels; ++c) {
    const float* ic = in + static_cast<std::size_t>(c) * h * w;
    const float* wc = weights + static_cast<std::size_t>(c) * k * k;
    float* oc = out + static_cast<std::size_t>(c) * oh * ow;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float acc = bias ? bias[c] : 0.0f;
        for (int ky = 0; ky < k; ++ky) {
          const int iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= h) continue;
          for (int kx = 0; kx < k; ++kx) {
            const int ix = ox * stride - pad + kx;
            if (ix < 0 || ix >= w) continue;
            acc += wc[ky * k + kx] * ic[static_cast<std::size_t>(iy) * w + ix];
          }
        }
        oc[static_cast<std::size_t>(oy) * ow + ox] = acc;
      }
    }
  }
}

namespace {

/// Round-to-nearest-even magic (1.5 * 2^23) — same idiom as quantize.cpp.
constexpr float kDwRound = 12582912.0f;

inline std::uint8_t* alloc_bytes(Workspace& ws, std::size_t bytes) {
  return reinterpret_cast<std::uint8_t*>(ws.alloc((bytes + 3) / 4));
}

}  // namespace

void quantize_dw_weights(const float* weights, int channels, int k,
                         QuantDwWeights& out) {
  out.channels = channels;
  out.k = k;
  out.kg = (k + 3) / 4;
  const std::size_t row = static_cast<std::size_t>(out.kg) * 4;
  out.codes.assign(static_cast<std::size_t>(channels) * k * row, 0);
  out.scale.assign(static_cast<std::size_t>(channels), 1.0f);
  out.sum.assign(static_cast<std::size_t>(channels), 0);
  for (int c = 0; c < channels; ++c) {
    const float* wc = weights + static_cast<std::size_t>(c) * k * k;
    float amax = 0.0f;
    for (int i = 0; i < k * k; ++i) {
      const float v = std::fabs(wc[i]);
      if (std::isfinite(v) && v > amax) amax = v;
    }
    const float s = amax / 127.0f;
    if (!(s > 1e-35f) || !std::isfinite(s)) continue;  // all-zero channel
    out.scale[static_cast<std::size_t>(c)] = s;
    const float inv = 127.0f / amax;
    std::int32_t cs = 0;
    for (int ky = 0; ky < k; ++ky) {
      std::int8_t* dst =
          out.codes.data() + (static_cast<std::size_t>(c) * k + ky) * row;
      for (int kx = 0; kx < k; ++kx) {
        float v = wc[ky * k + kx] * inv;
        v = std::min(std::max(v, -127.0f), 127.0f);
        const auto q = static_cast<std::int32_t>((v + kDwRound) - kDwRound);
        dst[kx] = static_cast<std::int8_t>(q);
        cs += q;
      }
    }
    out.sum[static_cast<std::size_t>(c)] = cs;
  }
}

#if MURMUR_INT8_DW_VEC
namespace {

/// One channel of the int8 depthwise conv, kernel size known at compile
/// time: the ky/kg loops unroll fully and the K*KG weight broadcasts are
/// hoisted out of the pixel loop entirely (they fit the zmm file alongside
/// the accumulator and shuffle index for every supernet kernel size).
template <int K>
void dw_int8_channel(const std::uint8_t* plane, std::size_t row_stride,
                     int oh, int ow, int stride, const std::int8_t* wc,
                     __m512i idx, __m512 scv, __m512 corrv, __m512 bsv,
                     float* oc) {
  constexpr int kKg = (K + 3) / 4;
  __m512i wv[K * kKg];
  for (int ky = 0; ky < K; ++ky) {
    for (int g = 0; g < kKg; ++g) {
      std::int32_t wdw;
      std::memcpy(&wdw, wc + static_cast<std::size_t>(ky) * (kKg * 4) + 4 * g,
                  4);
      wv[ky * kKg + g] = _mm512_set1_epi32(wdw);
    }
  }
  alignas(64) float tail[16];
  for (int oy = 0; oy < oh; ++oy) {
    float* orow = oc + static_cast<std::size_t>(oy) * ow;
    for (int j0 = 0; j0 < ow; j0 += 16) {
      __m512i acc = _mm512_setzero_si512();
      for (int ky = 0; ky < K; ++ky) {
        const std::uint8_t* prow =
            plane + static_cast<std::size_t>(oy * stride + ky) * row_stride +
            static_cast<std::size_t>(j0) * stride;
        for (int g = 0; g < kKg; ++g) {
          const __m512i src = _mm512_loadu_si512(prow + 4 * g);
          acc = _mm512_dpbusd_epi32(acc, _mm512_permutexvar_epi8(idx, src),
                                    wv[ky * kKg + g]);
        }
      }
      const __m512 f = _mm512_cvtepi32_ps(acc);
      const __m512 val = _mm512_fmadd_ps(_mm512_sub_ps(f, corrv), scv, bsv);
      if (j0 + 16 <= ow) {
        _mm512_storeu_ps(orow + j0, val);
      } else {
        _mm512_store_ps(tail, val);
        std::memcpy(orow + j0, tail,
                    static_cast<std::size_t>(ow - j0) * sizeof(float));
      }
    }
  }
}

}  // namespace
#endif  // MURMUR_INT8_DW_VEC

void depthwise_conv2d_int8(const float* in, int channels, int h, int w,
                           const QuantDwWeights& qw, const float* bias,
                           int stride, int pad, float* out) {
  const int k = qw.k;
  const int kg = qw.kg;
  const int oh = conv_out_size(h, k, stride, pad);
  const int ow = conv_out_size(w, k, stride, pad);
  assert(qw.channels == channels);

  // One zero-point-padded u8 plane, reused across channels. Row capacity
  // covers the widest vector load of the last 16-pixel chunk plus slack so
  // the kernel never branches on bounds; zp bytes decode to x == 0, so the
  // padding is numerically exact, not just memory-safe.
  const std::size_t img = static_cast<std::size_t>(channels) * h * w;
  const ActQuantU8 aq = choose_act_quant_u8(in, img);
  const int ph = h + 2 * pad;
  const std::size_t row_stride =
      static_cast<std::size_t>(((ow + 15) / 16) * 16) * stride + 4 * kg + 64;
  Workspace& ws = Workspace::tls();
  Workspace::Frame frame(ws);
  std::uint8_t* plane = alloc_bytes(ws, static_cast<std::size_t>(ph) * row_stride);
  // Quantize the whole image in one pass; per channel only cheap row
  // copies remain. The plane padding is seeded once — every channel
  // overwrites exactly the same interior window, so the zp border
  // survives across iterations.
  std::uint8_t* qimg = alloc_bytes(ws, img);
  quantize_u8(in, img, aq, qimg);
  std::memset(plane, static_cast<std::uint8_t>(aq.zero_point),
              static_cast<std::size_t>(ph) * row_stride);

  const float zp = static_cast<float>(aq.zero_point);
  const std::size_t wrow = static_cast<std::size_t>(kg) * 4;

#if MURMUR_INT8_DW_VEC
  // Sliding-window shuffle: result byte (4j + b) = source byte (j*stride +
  // b), so one 64-byte load covers 16 output pixels per (ky, kx-group).
  // Requires stride*15 + 3 < 64, i.e. stride <= 4 — the supernet uses 1/2.
  const bool vec = stride <= 4;
  alignas(64) std::uint8_t idx_bytes[64];
  for (int j = 0; j < 16; ++j)
    for (int b = 0; b < 4; ++b)
      idx_bytes[4 * j + b] = static_cast<std::uint8_t>(j * stride + b);
  const __m512i idx = _mm512_load_si512(idx_bytes);
  alignas(64) float tail[16];
#else
  const bool vec = false;
#endif

  for (int c = 0; c < channels; ++c) {
    const std::uint8_t* qc = qimg + static_cast<std::size_t>(c) * h * w;
    for (int y = 0; y < h; ++y)
      std::memcpy(plane + (static_cast<std::size_t>(y) + pad) * row_stride + pad,
                  qc + static_cast<std::size_t>(y) * w,
                  static_cast<std::size_t>(w));

    const std::int8_t* wc =
        qw.codes.data() + static_cast<std::size_t>(c) * k * wrow;
    const float sc = qw.scale[static_cast<std::size_t>(c)] * aq.scale;
    const float corr =
        zp * static_cast<float>(qw.sum[static_cast<std::size_t>(c)]);
    const float bs = bias ? bias[c] : 0.0f;
    float* oc = out + static_cast<std::size_t>(c) * oh * ow;

    if (vec) {
#if MURMUR_INT8_DW_VEC
      const __m512 scv = _mm512_set1_ps(sc);
      const __m512 corrv = _mm512_set1_ps(corr);
      const __m512 bsv = _mm512_set1_ps(bs);
      // Supernet kernel sizes take the fully unrolled template; anything
      // else falls through to the generic (runtime-k) vector loop below.
      if (k == 3) {
        dw_int8_channel<3>(plane, row_stride, oh, ow, stride, wc, idx, scv,
                           corrv, bsv, oc);
        continue;
      }
      if (k == 5) {
        dw_int8_channel<5>(plane, row_stride, oh, ow, stride, wc, idx, scv,
                           corrv, bsv, oc);
        continue;
      }
      if (k == 7) {
        dw_int8_channel<7>(plane, row_stride, oh, ow, stride, wc, idx, scv,
                           corrv, bsv, oc);
        continue;
      }
      for (int oy = 0; oy < oh; ++oy) {
        float* orow = oc + static_cast<std::size_t>(oy) * ow;
        for (int j0 = 0; j0 < ow; j0 += 16) {
          __m512i acc = _mm512_setzero_si512();
          for (int ky = 0; ky < k; ++ky) {
            const std::uint8_t* prow =
                plane + static_cast<std::size_t>(oy * stride + ky) * row_stride +
                static_cast<std::size_t>(j0) * stride;
            const std::int8_t* wk = wc + static_cast<std::size_t>(ky) * wrow;
            for (int g = 0; g < kg; ++g) {
              const __m512i src = _mm512_loadu_si512(prow + 4 * g);
              const __m512i av = _mm512_permutexvar_epi8(idx, src);
              std::int32_t wdw;
              std::memcpy(&wdw, wk + 4 * g, 4);
              acc = _mm512_dpbusd_epi32(acc, av, _mm512_set1_epi32(wdw));
            }
          }
          const __m512 f = _mm512_cvtepi32_ps(acc);
          const __m512 val =
              _mm512_fmadd_ps(_mm512_sub_ps(f, corrv), scv, bsv);
          if (j0 + 16 <= ow) {
            _mm512_storeu_ps(orow + j0, val);
          } else {
            _mm512_store_ps(tail, val);
            std::memcpy(orow + j0, tail,
                        static_cast<std::size_t>(ow - j0) * sizeof(float));
          }
        }
      }
      continue;
#endif
    }

    // Scalar integer path (exotic strides / no AVX512-VNNI+VBMI build):
    // same padded plane, same accumulator, same epilogue expression.
    for (int oy = 0; oy < oh; ++oy) {
      float* orow = oc + static_cast<std::size_t>(oy) * ow;
      for (int ox = 0; ox < ow; ++ox) {
        std::int32_t acc = 0;
        for (int ky = 0; ky < k; ++ky) {
          const std::uint8_t* prow =
              plane + static_cast<std::size_t>(oy * stride + ky) * row_stride +
              static_cast<std::size_t>(ox) * stride;
          const std::int8_t* wk = wc + static_cast<std::size_t>(ky) * wrow;
          for (std::size_t kx = 0; kx < wrow; ++kx)
            acc += static_cast<std::int32_t>(wk[kx]) *
                   static_cast<std::int32_t>(prow[kx]);
        }
        orow[ox] = (static_cast<float>(acc) - corr) * sc + bs;
      }
    }
  }
}

void conv2d_ref(const float* in, int c_in, int h, int w, const float* weights,
                const float* bias, int c_out, int k, int stride, int pad,
                int groups, float* out) {
  const int oh = conv_out_size(h, k, stride, pad);
  const int ow = conv_out_size(w, k, stride, pad);
  const int cpg = c_in / groups;
  const int opg = c_out / groups;
  for (int o = 0; o < c_out; ++o) {
    const int g = o / opg;
    float* oc = out + static_cast<std::size_t>(o) * oh * ow;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float acc = bias ? bias[o] : 0.0f;
        for (int c = 0; c < cpg; ++c) {
          const float* ic =
              in + static_cast<std::size_t>(g * cpg + c) * h * w;
          const float* wc = weights + (static_cast<std::size_t>(o) * cpg + c) *
                                          k * k;
          for (int ky = 0; ky < k; ++ky) {
            const int iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < k; ++kx) {
              const int ix = ox * stride - pad + kx;
              if (ix < 0 || ix >= w) continue;
              acc +=
                  wc[ky * k + kx] * ic[static_cast<std::size_t>(iy) * w + ix];
            }
          }
        }
        oc[static_cast<std::size_t>(oy) * ow + ox] = acc;
      }
    }
  }
}

}  // namespace murmur::kernels
