#include "tensor/conv_kernels.h"

#include <algorithm>

#include "tensor/gemm.h"

#if defined(_MSC_VER)
#define MURMUR_RESTRICT __restrict
#else
#define MURMUR_RESTRICT __restrict__
#endif

namespace murmur::kernels {

namespace {

/// Accumulate one bounds-checked output pixel (border path).
inline float border_pixel(const float* MURMUR_RESTRICT ic,
                          const float* MURMUR_RESTRICT wc, int w, int k,
                          int iy0, int ix0, int ky_lo, int ky_hi) {
  const int kx_lo = std::max(0, -ix0);
  const int kx_hi = std::min(k, w - ix0);
  float acc = 0.0f;
  for (int ky = ky_lo; ky < ky_hi; ++ky) {
    const float* MURMUR_RESTRICT row =
        ic + static_cast<std::size_t>(iy0 + ky) * w + ix0;
    const float* MURMUR_RESTRICT wrow = wc + static_cast<std::size_t>(ky) * k;
    for (int kx = kx_lo; kx < kx_hi; ++kx) acc += wrow[kx] * row[kx];
  }
  return acc;
}

}  // namespace

namespace {

/// Stride-1 depthwise: for each weight tap (ky,kx), the set of outputs the
/// tap touches is a contiguous sub-rectangle of the plane, so the whole
/// convolution decomposes into k·k shifted axpy sweeps — unit-stride,
/// branch-free, fully vectorizable, borders included.
void depthwise_stride1(const float* MURMUR_RESTRICT ic,
                       const float* MURMUR_RESTRICT wc, int h, int w, int k,
                       int pad, float bias_v, int oh, int ow,
                       float* MURMUR_RESTRICT oc) {
  for (int i = 0; i < oh * ow; ++i) oc[i] = bias_v;
  for (int ky = 0; ky < k; ++ky) {
    // oy values with iy = oy - pad + ky inside [0, h).
    const int oy_lo = std::max(0, pad - ky);
    const int oy_hi = std::min(oh, h + pad - ky);
    for (int kx = 0; kx < k; ++kx) {
      const int ox_lo = std::max(0, pad - kx);
      const int ox_hi = std::min(ow, w + pad - kx);
      const int span = ox_hi - ox_lo;
      if (span <= 0 || oy_hi <= oy_lo) continue;
      const float wv = wc[ky * k + kx];
      const float* MURMUR_RESTRICT ip =
          ic + static_cast<std::size_t>(oy_lo - pad + ky) * w +
          (ox_lo - pad + kx);
      float* MURMUR_RESTRICT op =
          oc + static_cast<std::size_t>(oy_lo) * ow + ox_lo;
      for (int oy = oy_lo; oy < oy_hi; ++oy, ip += w, op += ow)
        for (int x = 0; x < span; ++x) op[x] += wv * ip[x];
    }
  }
}

}  // namespace

void depthwise_conv2d(const float* in, int channels, int h, int w,
                      const float* weights, const float* bias, int k,
                      int stride, int pad, float* out) {
  const int oh = conv_out_size(h, k, stride, pad);
  const int ow = conv_out_size(w, k, stride, pad);
  if (stride == 1) {
    for (int c = 0; c < channels; ++c)
      depthwise_stride1(in + static_cast<std::size_t>(c) * h * w,
                        weights + static_cast<std::size_t>(c) * k * k, h, w, k,
                        pad, bias ? bias[c] : 0.0f, oh, ow,
                        out + static_cast<std::size_t>(c) * oh * ow);
    return;
  }
  // Interior output range along x: every kx tap lands inside [0, w).
  const int x_lo = std::min((pad + stride - 1) / stride, ow);
  const int x_hi =
      std::clamp(w - k + pad >= 0 ? (w - k + pad) / stride + 1 : 0, x_lo, ow);

  for (int c = 0; c < channels; ++c) {
    const float* MURMUR_RESTRICT ic =
        in + static_cast<std::size_t>(c) * h * w;
    const float* MURMUR_RESTRICT wc =
        weights + static_cast<std::size_t>(c) * k * k;
    float* MURMUR_RESTRICT oc = out + static_cast<std::size_t>(c) * oh * ow;
    const float b = bias ? bias[c] : 0.0f;

    for (int oy = 0; oy < oh; ++oy) {
      float* MURMUR_RESTRICT orow = oc + static_cast<std::size_t>(oy) * ow;
      const int iy0 = oy * stride - pad;
      const int ky_lo = std::max(0, -iy0);
      const int ky_hi = std::min(k, h - iy0);
      for (int ox = 0; ox < ow; ++ox) orow[ox] = b;

      // Left/right borders: clamped kx range per pixel, no inner-loop ifs.
      for (int ox = 0; ox < x_lo; ++ox)
        orow[ox] +=
            border_pixel(ic, wc, w, k, iy0, ox * stride - pad, ky_lo, ky_hi);
      for (int ox = x_hi; ox < ow; ++ox)
        orow[ox] +=
            border_pixel(ic, wc, w, k, iy0, ox * stride - pad, ky_lo, ky_hi);

      // Interior: full kx range guaranteed in bounds, no per-tap checks.
      for (int ox = x_lo; ox < x_hi; ++ox) {
        const int ix0 = ox * stride - pad;
        float acc = 0.0f;
        for (int ky = ky_lo; ky < ky_hi; ++ky) {
          const float* MURMUR_RESTRICT row =
              ic + static_cast<std::size_t>(iy0 + ky) * w + ix0;
          const float* MURMUR_RESTRICT wrow =
              wc + static_cast<std::size_t>(ky) * k;
          for (int kx = 0; kx < k; ++kx) acc += wrow[kx] * row[kx];
        }
        orow[ox] += acc;
      }
    }
  }
}

void depthwise_conv2d_ref(const float* in, int channels, int h, int w,
                          const float* weights, const float* bias, int k,
                          int stride, int pad, float* out) {
  const int oh = conv_out_size(h, k, stride, pad);
  const int ow = conv_out_size(w, k, stride, pad);
  for (int c = 0; c < channels; ++c) {
    const float* ic = in + static_cast<std::size_t>(c) * h * w;
    const float* wc = weights + static_cast<std::size_t>(c) * k * k;
    float* oc = out + static_cast<std::size_t>(c) * oh * ow;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float acc = bias ? bias[c] : 0.0f;
        for (int ky = 0; ky < k; ++ky) {
          const int iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= h) continue;
          for (int kx = 0; kx < k; ++kx) {
            const int ix = ox * stride - pad + kx;
            if (ix < 0 || ix >= w) continue;
            acc += wc[ky * k + kx] * ic[static_cast<std::size_t>(iy) * w + ix];
          }
        }
        oc[static_cast<std::size_t>(oy) * ow + ox] = acc;
      }
    }
  }
}

void conv2d_ref(const float* in, int c_in, int h, int w, const float* weights,
                const float* bias, int c_out, int k, int stride, int pad,
                int groups, float* out) {
  const int oh = conv_out_size(h, k, stride, pad);
  const int ow = conv_out_size(w, k, stride, pad);
  const int cpg = c_in / groups;
  const int opg = c_out / groups;
  for (int o = 0; o < c_out; ++o) {
    const int g = o / opg;
    float* oc = out + static_cast<std::size_t>(o) * oh * ow;
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        float acc = bias ? bias[o] : 0.0f;
        for (int c = 0; c < cpg; ++c) {
          const float* ic =
              in + static_cast<std::size_t>(g * cpg + c) * h * w;
          const float* wc = weights + (static_cast<std::size_t>(o) * cpg + c) *
                                          k * k;
          for (int ky = 0; ky < k; ++ky) {
            const int iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < k; ++kx) {
              const int ix = ox * stride - pad + kx;
              if (ix < 0 || ix >= w) continue;
              acc +=
                  wc[ky * k + kx] * ic[static_cast<std::size_t>(iy) * w + ix];
            }
          }
        }
        oc[static_cast<std::size_t>(oy) * ow + ox] = acc;
      }
    }
  }
}

}  // namespace murmur::kernels
