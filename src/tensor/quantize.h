// Uniform affine quantization of activation tensors.
//
// Murmuration's supernet search space includes per-layer *input feature
// quantization* (32 → 8 bits): before an activation crosses a device
// boundary it is quantized to reduce transfer volume, then dequantized on
// the receiving side. We implement symmetric-range affine quantization with
// a per-tensor scale, which is what edge inference stacks typically ship.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace murmur {

/// Supported activation bit-widths in the NAS search space.
enum class QuantBits : std::uint8_t { k32 = 32, k16 = 16, k8 = 8, k4 = 4 };

inline int bit_count(QuantBits b) noexcept { return static_cast<int>(b); }

/// Wire size in bytes of `elements` values at bit-width `b` (plus the
/// 8-byte scale/zero-point header for sub-32-bit payloads).
std::size_t quantized_wire_bytes(std::size_t elements, QuantBits b) noexcept;

/// A quantized activation blob as it would travel over the network.
struct QuantizedTensor {
  std::vector<int> shape;
  QuantBits bits = QuantBits::k32;
  float scale = 1.0f;     // dequant: x = scale * (q - zero_point)
  float zero_point = 0.0f;
  std::vector<std::int32_t> q;   // storage codes (one per element)
  std::vector<float> passthrough;  // used when bits == k32 (lossless)

  std::size_t wire_bytes() const noexcept;
};

/// Quantize with a symmetric range derived from the tensor's max |x|.
QuantizedTensor quantize(const Tensor& t, QuantBits bits);

/// Inverse of quantize(); exact for k32, lossy otherwise.
Tensor dequantize(const QuantizedTensor& qt);

/// Worst-case absolute round-trip error for the given tensor/bit-width
/// (half of one quantization step).
float quantization_step(const Tensor& t, QuantBits bits) noexcept;

}  // namespace murmur
