#include "tensor/gemm.h"

#include <cstring>

namespace murmur {

void gemm(int m, int k, int n, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    float* ci = c + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float aip = a[static_cast<std::size_t>(i) * k + p];
      if (aip == 0.0f) continue;
      const float* bp = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void im2col(const float* input, int channels, int height, int width, int kh,
            int kw, int stride, int pad, float* out) {
  const int oh = conv_out_size(height, kh, stride, pad);
  const int ow = conv_out_size(width, kw, stride, pad);
  const std::size_t cols = static_cast<std::size_t>(oh) * ow;
  std::size_t row = 0;
  for (int c = 0; c < channels; ++c) {
    const float* in_c = input + static_cast<std::size_t>(c) * height * width;
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx, ++row) {
        float* out_row = out + row * cols;
        std::size_t idx = 0;
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * stride - pad + ky;
          if (iy < 0 || iy >= height) {
            std::memset(out_row + idx, 0, sizeof(float) * ow);
            idx += ow;
            continue;
          }
          const float* in_row = in_c + static_cast<std::size_t>(iy) * width;
          for (int ox = 0; ox < ow; ++ox, ++idx) {
            const int ix = ox * stride - pad + kx;
            out_row[idx] = (ix < 0 || ix >= width) ? 0.0f : in_row[ix];
          }
        }
      }
    }
  }
}

}  // namespace murmur
