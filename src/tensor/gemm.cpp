#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "tensor/workspace.h"

#if defined(_MSC_VER)
#define MURMUR_RESTRICT __restrict
#else
#define MURMUR_RESTRICT __restrict__
#endif

namespace murmur {

namespace {

// Micro-tile of the register-blocked kernel: kMR rows × two vectors of
// kVL floats. 6×(2×8) keeps twelve 8-wide accumulators live on AVX2 (the
// classic BLIS shape); AVX-512 widens the same shape to twelve zmm. The
// micro-kernel is written with GCC/Clang vector extensions so codegen is a
// broadcast-FMA lattice by construction instead of relying on the
// auto-vectorizer (which SLP-mangles the scalar form).
#if defined(__AVX512F__)
constexpr int kVL = 16;
#elif defined(__AVX__)
constexpr int kVL = 8;
#else
constexpr int kVL = 4;
#endif
constexpr int kMR = 6;
constexpr int kNR = 2 * kVL;

#if defined(__GNUC__) || defined(__clang__)
#define MURMUR_VEC_EXT 1
using vfloat = float __attribute__((vector_size(kVL * sizeof(float)),
                                    aligned(alignof(float)), may_alias));
#endif

// Cache blocking: A panels (kMC×kKC ≈ 96 KiB) target L2, the B block
// (kKC×kNC ≤ 1 MiB) targets L3/streaming. kMC is a multiple of kMR.
constexpr int kKC = 256;
constexpr int kMC = 96;
constexpr int kNC = 1024;

// Flop threshold for parallel dispatch: below this the fork/join overhead
// dominates any speedup from extra cores.
constexpr std::size_t kParallelFlops = std::size_t{1} << 23;  // ~8 MFLOP

/// Pack A[0:mc, 0:kc] (row-major, leading dim `lda`) into micro-panels of
/// kMR rows: panel i0 holds kc columns of kMR consecutive rows, laid out
/// p-major so the micro-kernel streams it linearly. Short panels zero-pad.
void pack_a(int mc, int kc, const float* MURMUR_RESTRICT a, int lda,
            float* MURMUR_RESTRICT dst) {
  MURMUR_SPAN("kernel.pack", "kernel", obs::maybe_histogram("kernel.pack_ms"));
  for (int i0 = 0; i0 < mc; i0 += kMR) {
    const int mr = std::min(kMR, mc - i0);
    for (int p = 0; p < kc; ++p) {
      int r = 0;
      for (; r < mr; ++r)
        dst[p * kMR + r] = a[static_cast<std::size_t>(i0 + r) * lda + p];
      for (; r < kMR; ++r) dst[p * kMR + r] = 0.0f;
    }
    dst += static_cast<std::size_t>(kc) * kMR;
  }
}

/// Pack B[0:kc, 0:nc] (row-major, leading dim `ldb`) into micro-panels of
/// kNR columns, p-major within each panel. Short panels zero-pad.
void pack_b(int kc, int nc, const float* MURMUR_RESTRICT b, int ldb,
            float* MURMUR_RESTRICT dst) {
  MURMUR_SPAN("kernel.pack", "kernel", obs::maybe_histogram("kernel.pack_ms"));
  for (int j0 = 0; j0 < nc; j0 += kNR) {
    const int nr = std::min(kNR, nc - j0);
    if (nr == kNR) {
      for (int p = 0; p < kc; ++p)
        std::memcpy(dst + static_cast<std::size_t>(p) * kNR,
                    b + static_cast<std::size_t>(p) * ldb + j0,
                    sizeof(float) * kNR);
    } else {
      for (int p = 0; p < kc; ++p) {
        int j = 0;
        for (; j < nr; ++j)
          dst[static_cast<std::size_t>(p) * kNR + j] =
              b[static_cast<std::size_t>(p) * ldb + j0 + j];
        for (; j < kNR; ++j) dst[static_cast<std::size_t>(p) * kNR + j] = 0.0f;
      }
    }
    dst += static_cast<std::size_t>(kc) * kNR;
  }
}

/// kMR×kNR micro-kernel over packed panels: acc += Apanel · Bpanel, then
/// C[0:mr, 0:nr] += acc.
#if MURMUR_VEC_EXT
void micro_kernel(int kc, const float* MURMUR_RESTRICT ap,
                  const float* MURMUR_RESTRICT bp, float* MURMUR_RESTRICT c,
                  int ldc, int mr, int nr) {
  // 2·kMR accumulator vectors; `scalar * vector` broadcasts, so each p
  // step is two packed loads plus 2·kMR FMAs.
  vfloat acc[kMR][2] = {};
  for (int p = 0; p < kc; ++p) {
    const vfloat b0 = *reinterpret_cast<const vfloat*>(bp);
    const vfloat b1 = *reinterpret_cast<const vfloat*>(bp + kVL);
    for (int i = 0; i < kMR; ++i) {
      const float av = ap[i];
      acc[i][0] += av * b0;
      acc[i][1] += av * b1;
    }
    ap += kMR;
    bp += kNR;
  }
  if (mr == kMR && nr == kNR) {
    for (int i = 0; i < kMR; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      vfloat* c0 = reinterpret_cast<vfloat*>(crow);
      vfloat* c1 = reinterpret_cast<vfloat*>(crow + kVL);
      *c0 += acc[i][0];
      *c1 += acc[i][1];
    }
  } else {
    for (int i = 0; i < mr; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < nr; ++j) crow[j] += acc[i][j / kVL][j % kVL];
    }
  }
}
#else
void micro_kernel(int kc, const float* MURMUR_RESTRICT ap,
                  const float* MURMUR_RESTRICT bp, float* MURMUR_RESTRICT c,
                  int ldc, int mr, int nr) {
  float acc[kMR][kNR] = {};
  for (int p = 0; p < kc; ++p) {
    const float* MURMUR_RESTRICT brow = bp + static_cast<std::size_t>(p) * kNR;
    const float* MURMUR_RESTRICT acol = ap + static_cast<std::size_t>(p) * kMR;
    for (int i = 0; i < kMR; ++i) {
      const float av = acol[i];
      for (int j = 0; j < kNR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (int i = 0; i < mr; ++i) {
    float* MURMUR_RESTRICT crow = c + static_cast<std::size_t>(i) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += acc[i][j];
  }
}
#endif

/// Blocked single-thread GEMM over the row band [m0, m1): C += A·B.
/// Packing scratch comes from the calling thread's Workspace.
void gemm_band(int m0, int m1, int k, int n, const float* MURMUR_RESTRICT a,
               const float* MURMUR_RESTRICT b, float* MURMUR_RESTRICT c) {
  Workspace& ws = Workspace::tls();
  Workspace::Frame frame(ws);
  const int kcap = std::min(kKC, k);
  const int ncap = std::min(kNC, (n + kNR - 1) / kNR * kNR);
  const int mcap = std::min(kMC, (m1 - m0 + kMR - 1) / kMR * kMR);
  float* bpack = ws.alloc(static_cast<std::size_t>(kcap) * ncap);
  float* apack = ws.alloc(static_cast<std::size_t>(kcap) * mcap);

  for (int jc = 0; jc < n; jc += kNC) {
    const int nc = std::min(kNC, n - jc);
    const int npanels = (nc + kNR - 1) / kNR;
    for (int pc = 0; pc < k; pc += kKC) {
      const int kc = std::min(kKC, k - pc);
      pack_b(kc, nc, b + static_cast<std::size_t>(pc) * n + jc, n, bpack);
      for (int ic = m0; ic < m1; ic += kMC) {
        const int mc = std::min(kMC, m1 - ic);
        pack_a(mc, kc, a + static_cast<std::size_t>(ic) * k + pc, k, apack);
        for (int jr = 0; jr < npanels; ++jr) {
          const float* bp = bpack + static_cast<std::size_t>(jr) * kc * kNR;
          const int nr = std::min(kNR, nc - jr * kNR);
          for (int ir = 0; ir < mc; ir += kMR) {
            micro_kernel(kc,
                         apack + static_cast<std::size_t>(ir / kMR) * kc * kMR,
                         bp,
                         c + static_cast<std::size_t>(ic + ir) * n + jc +
                             jr * kNR,
                         n, std::min(kMR, mc - ir), nr);
          }
        }
      }
    }
  }
}

/// Process-wide pool for row-parallel GEMM dispatch. Lazily constructed on
/// first over-threshold call; never used recursively (the band tasks call
/// only the single-thread path), so waiting on it from the executor's tile
/// workers cannot deadlock.
ThreadPool& kernel_pool() {
  static ThreadPool pool(static_cast<std::size_t>(gemm_kernel_threads()));
  return pool;
}

}  // namespace

namespace {
std::atomic<int> g_thread_override{0};
}  // namespace

int gemm_kernel_threads() noexcept {
  const int ov = g_thread_override.load(std::memory_order_relaxed);
  if (ov > 0) return ov;
  static const int n = [] {
    if (const char* e = std::getenv("MURMUR_KERNEL_THREADS")) {
      const int v = std::atoi(e);
      if (v > 0) return std::min(v, 64);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc ? static_cast<int>(std::min(hc, 16u)) : 1;
  }();
  return n;
}

void gemm_override_threads(int n) noexcept {
  g_thread_override.store(n, std::memory_order_relaxed);
}

std::size_t gemm_parallel_flops() noexcept { return kParallelFlops; }

void gemm(int m, int k, int n, const float* a, const float* b, float* c) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  MURMUR_SPAN("kernel.gemm", "kernel", obs::maybe_histogram("kernel.gemm_ms"));
  const std::size_t flops = 2u * static_cast<std::size_t>(m) *
                            static_cast<std::size_t>(k) *
                            static_cast<std::size_t>(n);
  const int threads = gemm_kernel_threads();
  if (threads > 1 && flops >= kParallelFlops && m >= 2 * kMR) {
    // Row bands, each a multiple of kMR so no micro-tile straddles bands.
    const int bands = std::min(threads, (m + kMR - 1) / kMR);
    const int rows_per = ((m + bands - 1) / bands + kMR - 1) / kMR * kMR;
    kernel_pool().parallel_for(
        static_cast<std::size_t>(bands), [&](std::size_t t) {
          const int m0 = static_cast<int>(t) * rows_per;
          const int m1 = std::min(m, m0 + rows_per);
          if (m0 < m1) gemm_band(m0, m1, k, n, a, b, c);
        });
    return;
  }
  gemm_band(0, m, k, n, a, b, c);
}

void PackedGemmA::pack(int m, int k, const float* a) {
  m_ = m;
  k_ = k;
  packed_ = false;
  if (m <= 0 || k <= 0 || a == nullptr) return;
  // Same (pc, ic) traversal as gemm_band over the full row range, so the
  // stored panels are byte-identical to what pack_a would produce inline.
  offs_.clear();
  std::size_t total = 0;
  for (int pc = 0; pc < k; pc += kKC) {
    const int kc = std::min(kKC, k - pc);
    for (int ic = 0; ic < m; ic += kMC) {
      const int mc = std::min(kMC, m - ic);
      offs_.push_back(total);
      total += static_cast<std::size_t>((mc + kMR - 1) / kMR) * kc * kMR;
    }
  }
  panels_.resize(total);
  std::size_t idx = 0;
  for (int pc = 0; pc < k; pc += kKC) {
    const int kc = std::min(kKC, k - pc);
    for (int ic = 0; ic < m; ic += kMC) {
      const int mc = std::min(kMC, m - ic);
      pack_a(mc, kc, a + static_cast<std::size_t>(ic) * k + pc, k,
             panels_.data() + offs_[idx++]);
    }
  }
  packed_ = true;
}

void gemm_packed(const PackedGemmA& a, int n, const float* b, float* c) {
  const int m = a.m_, k = a.k_;
  if (!a.packed_ || m <= 0 || k <= 0 || n <= 0) return;
  MURMUR_SPAN("kernel.gemm", "kernel", obs::maybe_histogram("kernel.gemm_ms"));
  Workspace& ws = Workspace::tls();
  Workspace::Frame frame(ws);
  const int kcap = std::min(kKC, k);
  const int ncap = std::min(kNC, (n + kNR - 1) / kNR * kNR);
  float* bpack = ws.alloc(static_cast<std::size_t>(kcap) * ncap);

  // gemm_band's jc → pc → ic → jr → ir loop nest with the A packs hoisted:
  // per-element accumulation order is untouched, which is what makes this
  // path bit-compatible with the unpacked gemm.
  for (int jc = 0; jc < n; jc += kNC) {
    const int nc = std::min(kNC, n - jc);
    const int npanels = (nc + kNR - 1) / kNR;
    std::size_t pidx = 0;
    for (int pc = 0; pc < k; pc += kKC) {
      const int kc = std::min(kKC, k - pc);
      pack_b(kc, nc, b + static_cast<std::size_t>(pc) * n + jc, n, bpack);
      for (int ic = 0; ic < m; ic += kMC, ++pidx) {
        const int mc = std::min(kMC, m - ic);
        const float* apack = a.panels_.data() + a.offs_[pidx];
        for (int jr = 0; jr < npanels; ++jr) {
          const float* bp = bpack + static_cast<std::size_t>(jr) * kc * kNR;
          const int nr = std::min(kNR, nc - jr * kNR);
          for (int ir = 0; ir < mc; ir += kMR) {
            micro_kernel(
                kc, apack + static_cast<std::size_t>(ir / kMR) * kc * kMR, bp,
                c + static_cast<std::size_t>(ic + ir) * n + jc + jr * kNR, n,
                std::min(kMR, mc - ir), nr);
          }
        }
      }
    }
  }
}

void gemm_ref(int m, int k, int n, const float* a, const float* b, float* c) {
  for (int i = 0; i < m; ++i) {
    float* ci = c + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float aip = a[static_cast<std::size_t>(i) * k + p];
      const float* bp = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void gemv(int m, int k, const float* a, const float* x, const float* bias,
          float* y) {
  constexpr int kLanes = 8;
  int o = 0;
  // Four rows at a time: 4×8 lane accumulators vectorize without needing
  // float-reassociation flags; one horizontal reduction per row at the end.
  for (; o + 4 <= m; o += 4) {
    const float* MURMUR_RESTRICT r0 = a + static_cast<std::size_t>(o) * k;
    const float* MURMUR_RESTRICT r1 = r0 + k;
    const float* MURMUR_RESTRICT r2 = r1 + k;
    const float* MURMUR_RESTRICT r3 = r2 + k;
    float acc[4][kLanes] = {};
    int i = 0;
    for (; i + kLanes <= k; i += kLanes) {
      for (int l = 0; l < kLanes; ++l) {
        const float xv = x[i + l];
        acc[0][l] += r0[i + l] * xv;
        acc[1][l] += r1[i + l] * xv;
        acc[2][l] += r2[i + l] * xv;
        acc[3][l] += r3[i + l] * xv;
      }
    }
    float s[4] = {};
    for (int r = 0; r < 4; ++r)
      for (int l = 0; l < kLanes; ++l) s[r] += acc[r][l];
    for (; i < k; ++i) {
      const float xv = x[i];
      s[0] += r0[i] * xv;
      s[1] += r1[i] * xv;
      s[2] += r2[i] * xv;
      s[3] += r3[i] * xv;
    }
    for (int r = 0; r < 4; ++r) y[o + r] = s[r] + (bias ? bias[o + r] : 0.0f);
  }
  for (; o < m; ++o) {
    const float* MURMUR_RESTRICT row = a + static_cast<std::size_t>(o) * k;
    float acc[kLanes] = {};
    int i = 0;
    for (; i + kLanes <= k; i += kLanes)
      for (int l = 0; l < kLanes; ++l) acc[l] += row[i + l] * x[i + l];
    float s = 0.0f;
    for (int l = 0; l < kLanes; ++l) s += acc[l];
    for (; i < k; ++i) s += row[i] * x[i];
    y[o] = s + (bias ? bias[o] : 0.0f);
  }
}

void im2col(const float* input, int channels, int height, int width, int kh,
            int kw, int stride, int pad, float* out) {
  MURMUR_SPAN("kernel.im2col", "kernel",
              obs::maybe_histogram("kernel.im2col_ms"));
  const int oh = conv_out_size(height, kh, stride, pad);
  const int ow = conv_out_size(width, kw, stride, pad);
  const std::size_t cols = static_cast<std::size_t>(oh) * ow;
  std::size_t row = 0;
  for (int c = 0; c < channels; ++c) {
    const float* in_c = input + static_cast<std::size_t>(c) * height * width;
    for (int ky = 0; ky < kh; ++ky) {
      for (int kx = 0; kx < kw; ++kx, ++row) {
        float* out_row = out + row * cols;
        // ox values for which ix = ox*stride - pad + kx lands in [0, width):
        const int ox_lo =
            std::clamp(kx >= pad ? 0 : (pad - kx + stride - 1) / stride, 0, ow);
        // Guard the negative case explicitly: C division truncates toward
        // zero, so (negative)/stride + 1 would wrongly admit ox = 0.
        const int hi_num = width - 1 - kx + pad;
        const int ox_hi =
            std::clamp(hi_num >= 0 ? hi_num / stride + 1 : 0, ox_lo, ow);
        for (int oy = 0; oy < oh; ++oy) {
          const int iy = oy * stride - pad + ky;
          float* dst = out_row + static_cast<std::size_t>(oy) * ow;
          if (iy < 0 || iy >= height) {
            std::memset(dst, 0, sizeof(float) * ow);
            continue;
          }
          const float* in_row = in_c + static_cast<std::size_t>(iy) * width;
          if (ox_lo > 0) std::memset(dst, 0, sizeof(float) * ox_lo);
          if (ox_hi < ow)
            std::memset(dst + ox_hi, 0, sizeof(float) * (ow - ox_hi));
          if (stride == 1) {
            std::memcpy(dst + ox_lo, in_row + ox_lo - pad + kx,
                        sizeof(float) * (ox_hi - ox_lo));
          } else {
            for (int ox = ox_lo; ox < ox_hi; ++ox)
              dst[ox] = in_row[ox * stride - pad + kx];
          }
        }
      }
    }
  }
}

}  // namespace murmur
