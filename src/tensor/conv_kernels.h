// Direct convolution kernels: a fast depthwise path and naive references.
//
// The depthwise kernel is the supernet's second-hottest operation (every
// MBConv block runs one at the elastic kernel size). `depthwise_conv2d`
// splits each output row into border and interior segments so all bounds
// checks hoist out of the inner loop; the stride-1 interior reduces to
// unit-stride multiply-accumulate sweeps that auto-vectorize. The `_ref`
// variants are the original checked quad-loops, kept for differential
// testing.
//
// All kernels operate on a single image in CHW layout with square kernels,
// symmetric zero padding and row-major contiguous storage.
#pragma once

namespace murmur::kernels {

/// Depthwise convolution: in (C,H,W), weights (C,k,k), optional bias (C),
/// out (C,oh,ow) fully overwritten. `pad` is the symmetric zero padding.
void depthwise_conv2d(const float* in, int channels, int h, int w,
                      const float* weights, const float* bias, int k,
                      int stride, int pad, float* out);

/// Reference depthwise convolution (per-element bounds checks).
void depthwise_conv2d_ref(const float* in, int channels, int h, int w,
                          const float* weights, const float* bias, int k,
                          int stride, int pad, float* out);

/// Reference grouped convolution for a single image: in (Cin,H,W), weights
/// (Cout, Cin/groups, k, k), optional bias (Cout), out (Cout,oh,ow) fully
/// overwritten. Covers standard (groups=1), grouped and depthwise
/// (groups=Cin) shapes; used to differentially test the im2col+GEMM path.
void conv2d_ref(const float* in, int c_in, int h, int w, const float* weights,
                const float* bias, int c_out, int k, int stride, int pad,
                int groups, float* out);

}  // namespace murmur::kernels
