// Direct convolution kernels: a fast depthwise path and naive references.
//
// The depthwise kernel is the supernet's second-hottest operation (every
// MBConv block runs one at the elastic kernel size). `depthwise_conv2d`
// splits each output row into border and interior segments so all bounds
// checks hoist out of the inner loop; the stride-1 interior reduces to
// unit-stride multiply-accumulate sweeps that auto-vectorize. The `_ref`
// variants are the original checked quad-loops, kept for differential
// testing.
//
// All kernels operate on a single image in CHW layout with square kernels,
// symmetric zero padding and row-major contiguous storage.
//
// The int8 depthwise path mirrors the fp32 contract but computes u8×s8→s32
// on a zero-point-padded plane: activations are quantized per call (range
// widened to include 0, so the conv's zero padding maps to the zero point
// exactly), weights carry per-channel symmetric scales quantized once per
// weight epoch via `quantize_dw_weights`, and the dequantizing epilogue
// applies the standard zero-point correction. Integer accumulation is
// exact, so results are independent of traversal order — batched and
// serial execution agree bitwise.
#pragma once

#include <cstdint>
#include <vector>

namespace murmur::kernels {

/// Depthwise convolution: in (C,H,W), weights (C,k,k), optional bias (C),
/// out (C,oh,ow) fully overwritten. `pad` is the symmetric zero padding.
void depthwise_conv2d(const float* in, int channels, int h, int w,
                      const float* weights, const float* bias, int k,
                      int stride, int pad, float* out);

/// Reference depthwise convolution (per-element bounds checks).
void depthwise_conv2d_ref(const float* in, int channels, int h, int w,
                          const float* weights, const float* bias, int k,
                          int stride, int pad, float* out);

/// Depthwise weights quantized to s8 with per-channel symmetric scales.
/// The kx axis is padded to a multiple of 4 (zero codes) so the VNNI
/// kernel can broadcast whole dwords; `sum` is the per-channel code sum
/// used by the zero-point correction. Build once per weight epoch
/// (nn/conv2d caches it alongside the cropped-weight slots).
struct QuantDwWeights {
  int channels = 0;
  int k = 0;
  int kg = 0;  // ceil(k / 4) kx dword groups
  std::vector<std::int8_t> codes;  // [c][k][kg * 4], kx zero-padded
  std::vector<float> scale;        // [c]: w ≈ scale[c] * code
  std::vector<std::int32_t> sum;   // [c]: Σ codes (real taps only)

  bool matches(int c, int kk) const noexcept {
    return channels == c && k == kk && !codes.empty();
  }
};

/// Quantize fp32 depthwise weights (C,k,k) into `out` (reused in place).
void quantize_dw_weights(const float* weights, int channels, int k,
                         QuantDwWeights& out);

/// Quantized depthwise convolution: same shape contract as
/// `depthwise_conv2d`, computed u8×s8→s32 with a per-call activation
/// quantization over `in` and a fused dequantizing epilogue. Scratch (the
/// zero-point-padded plane) comes from the calling thread's Workspace.
void depthwise_conv2d_int8(const float* in, int channels, int h, int w,
                           const QuantDwWeights& qw, const float* bias,
                           int stride, int pad, float* out);

/// Reference grouped convolution for a single image: in (Cin,H,W), weights
/// (Cout, Cin/groups, k, k), optional bias (Cout), out (Cout,oh,ow) fully
/// overwritten. Covers standard (groups=1), grouped and depthwise
/// (groups=Cin) shapes; used to differentially test the im2col+GEMM path.
void conv2d_ref(const float* in, int c_in, int h, int w, const float* weights,
                const float* bias, int c_out, int k, int stride, int pad,
                int groups, float* out);

}  // namespace murmur::kernels
