#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace murmur {

namespace {

/// Single-pass max|x| over a contiguous buffer. Max-reductions vectorize
/// without float-reassociation flags, unlike sum-reductions.
float abs_max(const float* p, std::size_t n) noexcept {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

}  // namespace

std::size_t quantized_wire_bytes(std::size_t elements, QuantBits b) noexcept {
  if (b == QuantBits::k32) return elements * 4;
  const std::size_t payload = (elements * static_cast<std::size_t>(bit_count(b)) + 7) / 8;
  return payload + 8;  // scale + zero-point header
}

std::size_t QuantizedTensor::wire_bytes() const noexcept {
  return quantized_wire_bytes(shape_numel(shape), bits);
}

float quantization_step(const Tensor& t, QuantBits bits) noexcept {
  if (bits == QuantBits::k32) return 0.0f;
  const float amax = t.max_abs();
  if (amax == 0.0f) return 0.0f;
  const int levels = (1 << (bit_count(bits) - 1)) - 1;
  return amax / static_cast<float>(levels);
}

QuantizedTensor quantize(const Tensor& t, QuantBits bits) {
  MURMUR_SPAN("kernel.quantize", "kernel",
              obs::maybe_histogram("kernel.quantize_ms"));
  QuantizedTensor out;
  out.shape = t.shape();
  out.bits = bits;
  if (bits == QuantBits::k32) {
    out.passthrough.assign(t.data().begin(), t.data().end());
    return out;
  }
  const float* p = t.raw();
  const std::size_t n = t.size();
  const float amax = abs_max(p, n);
  const int levels = (1 << (bit_count(bits) - 1)) - 1;  // e.g. 127 for int8
  out.scale = amax > 0.0f ? amax / static_cast<float>(levels) : 1.0f;
  out.zero_point = 0.0f;
  out.q.resize(n);
  const float inv = 1.0f / out.scale;
  const float lim = static_cast<float>(levels);
  std::int32_t* q = out.q.data();
  // Scale, clamp, round-to-nearest-even via the 1.5·2^23 magic-number
  // trick: exact for |v| <= 2^22, and every step (mul, min/max, add, sub,
  // truncating convert) maps to one packed instruction, so the loop
  // vectorizes. lrintf/round would pin the loop to scalar libm calls.
  constexpr float kRound = 12582912.0f;  // 1.5 * 2^23
  for (std::size_t i = 0; i < n; ++i) {
    const float v = std::clamp(p[i] * inv, -lim, lim);
    q[i] = static_cast<std::int32_t>((v + kRound) - kRound);
  }
  return out;
}

Tensor dequantize(const QuantizedTensor& qt) {
  Tensor t(qt.shape);
  if (qt.bits == QuantBits::k32) {
    std::copy(qt.passthrough.begin(), qt.passthrough.end(), t.data().begin());
    return t;
  }
  const float scale = qt.scale;
  const float zp = qt.zero_point;
  const std::int32_t* q = qt.q.data();
  float* p = t.raw();
  const std::size_t n = qt.q.size();
  if (zp == 0.0f) {
    for (std::size_t i = 0; i < n; ++i) p[i] = scale * static_cast<float>(q[i]);
  } else {
    for (std::size_t i = 0; i < n; ++i)
      p[i] = scale * (static_cast<float>(q[i]) - zp);
  }
  return t;
}

}  // namespace murmur
