#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>

namespace murmur {

std::size_t quantized_wire_bytes(std::size_t elements, QuantBits b) noexcept {
  if (b == QuantBits::k32) return elements * 4;
  const std::size_t payload = (elements * static_cast<std::size_t>(bit_count(b)) + 7) / 8;
  return payload + 8;  // scale + zero-point header
}

std::size_t QuantizedTensor::wire_bytes() const noexcept {
  return quantized_wire_bytes(shape_numel(shape), bits);
}

float quantization_step(const Tensor& t, QuantBits bits) noexcept {
  if (bits == QuantBits::k32) return 0.0f;
  const float amax = t.max_abs();
  if (amax == 0.0f) return 0.0f;
  const int levels = (1 << (bit_count(bits) - 1)) - 1;
  return amax / static_cast<float>(levels);
}

QuantizedTensor quantize(const Tensor& t, QuantBits bits) {
  QuantizedTensor out;
  out.shape = t.shape();
  out.bits = bits;
  if (bits == QuantBits::k32) {
    out.passthrough.assign(t.data().begin(), t.data().end());
    return out;
  }
  const float amax = t.max_abs();
  const int levels = (1 << (bit_count(bits) - 1)) - 1;  // e.g. 127 for int8
  out.scale = amax > 0.0f ? amax / static_cast<float>(levels) : 1.0f;
  out.zero_point = 0.0f;
  out.q.resize(t.size());
  const float inv = 1.0f / out.scale;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const float q = std::round(t[i] * inv);
    out.q[i] = static_cast<std::int32_t>(
        std::clamp(q, -static_cast<float>(levels), static_cast<float>(levels)));
  }
  return out;
}

Tensor dequantize(const QuantizedTensor& qt) {
  Tensor t(qt.shape);
  if (qt.bits == QuantBits::k32) {
    std::copy(qt.passthrough.begin(), qt.passthrough.end(), t.data().begin());
    return t;
  }
  for (std::size_t i = 0; i < qt.q.size(); ++i)
    t[i] = qt.scale * (static_cast<float>(qt.q[i]) - qt.zero_point);
  return t;
}

}  // namespace murmur
