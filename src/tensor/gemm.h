// GEMM + im2col kernels used by the convolution and linear layers.
//
// `gemm` is a cache-blocked, register-tiled SGEMM: A and B are repacked
// into contiguous micro-panels sized for the vector registers, a fixed
// MR×NR micro-kernel accumulates over the packed panels, and — above a
// flop threshold — row bands are dispatched across a process-wide kernel
// thread pool. The naive triple-loop version survives as `gemm_ref` for
// differential testing and packed-vs-naive benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace murmur {

/// C(m×n) += A(m×k) · B(k×n). Row-major, contiguous. Blocked/packed with an
/// explicit micro-kernel; scratch comes from the calling thread's
/// Workspace; dispatches row bands over the kernel pool when the problem
/// exceeds `gemm_parallel_flops()` and more than one kernel thread is
/// configured.
void gemm(int m, int k, int n, const float* a, const float* b, float* c);

/// A(m×k) repacked once into `gemm`'s internal micro-panel layout so the
/// pack cost is paid a single time and amortized across many products that
/// reuse the same A (the batched pointwise-convolution fast path packs the
/// weight matrix once and multiplies per sample). `gemm_packed` reproduces
/// `gemm`'s cache blocking and per-element accumulation order exactly, so
/// results are bit-identical to the unpacked call on the same operands.
class PackedGemmA {
 public:
  /// Repack `a` (row-major m×k, contiguous). Safe to call again to re-pack
  /// different contents or a different shape.
  void pack(int m, int k, const float* a);

  bool matches(int m, int k) const noexcept {
    return packed_ && m_ == m && k_ == k;
  }
  int m() const noexcept { return m_; }
  int k() const noexcept { return k_; }

 private:
  friend void gemm_packed(const PackedGemmA& a, int n, const float* b,
                          float* c);
  int m_ = 0;
  int k_ = 0;
  bool packed_ = false;
  std::vector<float> panels_;       // concatenated (pc, ic) micro-panel runs
  std::vector<std::size_t> offs_;   // start of each (pc, ic) run in panels_
};

/// C(m×n) += Apacked(m×k) · B(k×n); bit-identical to `gemm(m,k,n,...)` on
/// the same operands. Single-threaded by design: the batched callers run
/// many independent products and parallelize above this call.
void gemm_packed(const PackedGemmA& a, int n, const float* b, float* c);

/// Reference triple-loop GEMM (ikj order), same accumulate-into-C contract.
/// Kept for differential tests and benchmarks; not used on the hot path.
void gemm_ref(int m, int k, int n, const float* a, const float* b, float* c);

/// y(m) = A(m×k) · x(k) [+ bias(m) when non-null]. Row-major matrix-vector
/// product with multi-accumulator inner loops (the Linear/SE fast path).
void gemv(int m, int k, const float* a, const float* x, const float* bias,
          float* y);

/// Flop count (2·m·k·n) above which `gemm` considers parallel dispatch.
std::size_t gemm_parallel_flops() noexcept;

/// Number of kernel-pool threads `gemm` may use. Defaults to the hardware
/// concurrency; override with MURMUR_KERNEL_THREADS (1 disables the
/// parallel path). Read once, at first use.
int gemm_kernel_threads() noexcept;

/// Test hook: force the kernel thread count (0 restores the default).
/// Call before the first over-threshold gemm so the pool is sized to
/// match; intended for differential tests of the parallel dispatch path.
void gemm_override_threads(int n) noexcept;

/// im2col for a single image: input (C,H,W) -> columns matrix of shape
/// (C*kh*kw) × (oh*ow), with given stride and symmetric zero padding.
/// `out` must hold (c*kh*kw) * (oh*ow) floats. Bounds handling is hoisted
/// out of the inner loop; the stride-1 interior is a straight memcpy.
void im2col(const float* input, int channels, int height, int width, int kh,
            int kw, int stride, int pad, float* out);

/// Output spatial size of a convolution along one dimension.
constexpr int conv_out_size(int in, int kernel, int stride, int pad) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace murmur
