// Minimal GEMM + im2col used by the convolution layers.
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace murmur {

/// C(m×n) = A(m×k) · B(k×n), accumulating into C (caller zeroes C first if
/// needed). Row-major, ikj loop order for streaming access to B and C.
void gemm(int m, int k, int n, const float* a, const float* b, float* c);

/// im2col for a single image: input (C,H,W) -> columns matrix of shape
/// (C*kh*kw) × (oh*ow), with given stride and symmetric zero padding.
/// `out` must hold (c*kh*kw) * (oh*ow) floats.
void im2col(const float* input, int channels, int height, int width, int kh,
            int kw, int stride, int pad, float* out);

/// Output spatial size of a convolution along one dimension.
constexpr int conv_out_size(int in, int kernel, int stride, int pad) noexcept {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace murmur
