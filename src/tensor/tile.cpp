#include "tensor/tile.h"

#include <cassert>

namespace murmur {

std::vector<TileExtent> tile_extents(int height, int width,
                                     PartitionGrid grid) {
  assert(grid.rows >= 1 && grid.cols >= 1);
  std::vector<TileExtent> out;
  out.reserve(static_cast<std::size_t>(grid.tiles()));
  const int base_h = height / grid.rows;
  const int base_w = width / grid.cols;
  for (int r = 0; r < grid.rows; ++r) {
    for (int c = 0; c < grid.cols; ++c) {
      TileExtent e;
      e.h0 = r * base_h;
      e.w0 = c * base_w;
      e.h = (r == grid.rows - 1) ? height - e.h0 : base_h;
      e.w = (c == grid.cols - 1) ? width - e.w0 : base_w;
      out.push_back(e);
    }
  }
  return out;
}

std::vector<Tensor> split_fdsp(const Tensor& input, PartitionGrid grid,
                               int halo) {
  assert(input.rank() == 4);
  const auto extents = tile_extents(input.dim(2), input.dim(3), grid);
  std::vector<Tensor> tiles;
  tiles.reserve(extents.size());
  for (const auto& e : extents) {
    // FDSP: crop the tile, then zero-pad every side by `halo`. Sides facing
    // the map border would have been zero-padded by the convolution anyway;
    // interior sides get zeros instead of neighbour data.
    Tensor t = input.crop(e.h0, e.w0, e.h, e.w);
    if (halo > 0) t = t.pad(halo, halo, halo, halo);
    tiles.push_back(std::move(t));
  }
  return tiles;
}

Tensor merge_tiles(const std::vector<Tensor>& tiles,
                   const std::vector<TileExtent>& extents, int channels,
                   int height, int width) {
  assert(tiles.size() == extents.size());
  assert(!tiles.empty());
  const int n = tiles.front().dim(0);
  Tensor out({n, channels, height, width});
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const auto& t = tiles[i];
    const auto& e = extents[i];
    assert(t.dim(2) == e.h && t.dim(3) == e.w);
    for (int b = 0; b < n; ++b)
      for (int c = 0; c < channels; ++c)
        for (int h = 0; h < e.h; ++h)
          for (int w = 0; w < e.w; ++w)
            out.at(b, c, e.h0 + h, e.w0 + w) = t.at(b, c, h, w);
  }
  return out;
}

std::size_t halo_exchange_bytes(int height, int width, int channels,
                                PartitionGrid grid, int halo) noexcept {
  if (grid.tiles() <= 1 || halo <= 0) return 0;
  // Interior horizontal edges: (rows-1) * cols edges, each moving
  // 2 * halo * tile_width * channels floats (both directions).
  const int tile_w = width / grid.cols;
  const int tile_h = height / grid.rows;
  std::size_t floats = 0;
  floats += static_cast<std::size_t>(grid.rows - 1) * grid.cols * 2ull *
            halo * tile_w * channels;
  floats += static_cast<std::size_t>(grid.cols - 1) * grid.rows * 2ull *
            halo * tile_h * channels;
  return floats * sizeof(float);
}

}  // namespace murmur
