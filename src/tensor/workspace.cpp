#include "tensor/workspace.h"

#include <algorithm>
#include <new>

namespace murmur {

namespace {
constexpr std::size_t round_up(std::size_t n, std::size_t mult) noexcept {
  return (n + mult - 1) / mult * mult;
}
}  // namespace

Workspace::~Workspace() { release(); }

Workspace& Workspace::tls() {
  static thread_local Workspace ws;
  return ws;
}

float* Workspace::alloc(std::size_t n) {
  // Keep every allocation a multiple of the alignment so successive bumps
  // stay aligned.
  n = round_up(std::max<std::size_t>(n, 1), kAlign / sizeof(float));
  for (;;) {
    if (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      if (c.cap - c.used >= n) {
        float* p = c.data + c.used;
        c.used += n;
        return p;
      }
      ++active_;  // tail of this chunk is wasted until the frame rewinds
      continue;
    }
    const std::size_t cap = std::max(n, kMinChunkFloats);
    float* data = static_cast<float*>(
        ::operator new(cap * sizeof(float), std::align_val_t{kAlign}));
    chunks_.push_back(Chunk{data, cap, 0});
    ++chunk_allocs_;
  }
}

void Workspace::rewind(std::size_t chunk, std::size_t used) noexcept {
  for (std::size_t i = chunk + 1; i < chunks_.size(); ++i) chunks_[i].used = 0;
  if (chunk < chunks_.size()) chunks_[chunk].used = used;
  active_ = chunk;
}

std::size_t Workspace::capacity_bytes() const noexcept {
  std::size_t b = 0;
  for (const Chunk& c : chunks_) b += c.cap * sizeof(float);
  return b;
}

std::size_t Workspace::used_bytes() const noexcept {
  std::size_t b = 0;
  for (const Chunk& c : chunks_) b += c.used * sizeof(float);
  return b;
}

void Workspace::release() {
  for (Chunk& c : chunks_)
    ::operator delete(c.data, std::align_val_t{kAlign});
  chunks_.clear();
  active_ = 0;
}

}  // namespace murmur
