// Event-driven latency evaluation of a (SubnetConfig, PlacementPlan)
// strategy over a simulated network.
//
// The evaluator plays out the dataflow of one distributed inference:
// blocks run in dependency order; the tiles of a block run in parallel on
// their assigned devices; a tile starts once every overlapping region of
// the previous block's (possibly differently partitioned, possibly
// quantized) output has arrived at its device; two tiles mapped to one
// device serialize on that device. This is the same first-order model
// Neurosurgeon-class systems use, extended to tile granularity.
#pragma once

#include "netsim/network.h"
#include "partition/plan.h"
#include "partition/timeline.h"

namespace murmur::partition {

struct LatencyBreakdown {
  double total_ms = 0.0;
  double compute_ms = 0.0;  // summed busy time across devices
  double comm_ms = 0.0;     // summed transfer time across messages
  double critical_comm_ms = 0.0;  // comm on the critical path (approx.)
  int messages = 0;
  std::size_t bytes_moved = 0;
};

class SubnetLatencyEvaluator {
 public:
  explicit SubnetLatencyEvaluator(const netsim::Network& network)
      : network_(network) {}

  /// Latency of one inference (image starts on device 0; logits must
  /// arrive back at device 0). If `timeline` is non-null it receives one
  /// event per compute/transfer for Gantt rendering.
  LatencyBreakdown evaluate(const supernet::SubnetConfig& config,
                            const PlacementPlan& plan,
                            Timeline* timeline = nullptr) const;

  /// Convenience: total milliseconds only.
  double latency_ms(const supernet::SubnetConfig& config,
                    const PlacementPlan& plan) const {
    return evaluate(config, plan).total_ms;
  }

 private:
  const netsim::Network& network_;
};

/// Fractional area of `a` covered by `b` (extents on the same lattice).
double overlap_fraction(const TileExtent& a, const TileExtent& b) noexcept;

}  // namespace murmur::partition
