// Event-driven latency evaluation of a (SubnetConfig, PlacementPlan)
// strategy over a simulated network.
//
// The evaluator plays out the dataflow of one distributed inference:
// blocks run in dependency order; the tiles of a block run in parallel on
// their assigned devices; a tile starts once every overlapping region of
// the previous block's (possibly differently partitioned, possibly
// quantized) output has arrived at its device; two tiles mapped to one
// device serialize on that device. This is the same first-order model
// Neurosurgeon-class systems use, extended to tile granularity.
#pragma once

#include "netsim/network.h"
#include "partition/plan.h"
#include "partition/timeline.h"

namespace murmur::partition {

struct LatencyBreakdown {
  double total_ms = 0.0;
  double compute_ms = 0.0;  // summed busy time across devices
  double comm_ms = 0.0;     // summed transfer time across messages
  double critical_comm_ms = 0.0;  // comm on the critical path (approx.)
  int messages = 0;
  std::size_t bytes_moved = 0;
};

class SubnetLatencyEvaluator {
 public:
  explicit SubnetLatencyEvaluator(const netsim::Network& network)
      : network_(network) {}

  /// Latency of one inference (image starts on device 0; logits must
  /// arrive back at device 0). If `timeline` is non-null it receives one
  /// event per compute/transfer for Gantt rendering.
  LatencyBreakdown evaluate(const supernet::SubnetConfig& config,
                            const PlacementPlan& plan,
                            Timeline* timeline = nullptr) const {
    return evaluate_batch(config, plan, 1, timeline);
  }

  /// Latency of a strategy-coalesced micro-batch of `batch` same-strategy
  /// inferences executed as one fused pass (DESIGN.md §5.10): every tile's
  /// compute and every message's payload scale with the batch size, but
  /// each message's fixed path delay — and the per-block scaffolding the
  /// event playout models — is paid once per batch. `batch == 1` is
  /// bitwise identical to evaluate(). Dividing total_ms by `batch` gives
  /// the per-member executor occupancy used by serving admission.
  LatencyBreakdown evaluate_batch(const supernet::SubnetConfig& config,
                                  const PlacementPlan& plan, int batch,
                                  Timeline* timeline = nullptr) const;

  /// Convenience: total milliseconds only.
  double latency_ms(const supernet::SubnetConfig& config,
                    const PlacementPlan& plan) const {
    return evaluate(config, plan).total_ms;
  }

  /// Convenience: fused-batch total milliseconds only.
  double batch_latency_ms(const supernet::SubnetConfig& config,
                          const PlacementPlan& plan, int batch) const {
    return evaluate_batch(config, plan, batch).total_ms;
  }

 private:
  const netsim::Network& network_;
};

/// Fractional area of `a` covered by `b` (extents on the same lattice).
double overlap_fraction(const TileExtent& a, const TileExtent& b) noexcept;

}  // namespace murmur::partition
