// Event-driven latency evaluation of a (SubnetConfig, PlacementPlan)
// strategy over a simulated network.
//
// The evaluator plays out the dataflow of one distributed inference:
// blocks run in dependency order; the tiles of a block run in parallel on
// their assigned devices; a tile starts once every overlapping region of
// the previous block's (possibly differently partitioned, possibly
// quantized) output has arrived at its device; two tiles mapped to one
// device serialize on that device. This is the same first-order model
// Neurosurgeon-class systems use, extended to tile granularity.
#pragma once

#include "netsim/network.h"
#include "partition/plan.h"
#include "partition/timeline.h"

namespace murmur::partition {

struct LatencyBreakdown {
  double total_ms = 0.0;
  double compute_ms = 0.0;  // summed busy time across devices
  double comm_ms = 0.0;     // summed transfer time across messages
  double critical_comm_ms = 0.0;  // comm on the critical path (approx.)
  int messages = 0;
  std::size_t bytes_moved = 0;
};

/// Exact decomposition of the critical path for per-request latency
/// attribution (obs phase ledger; DESIGN.md §5.11). The four scalar fields
/// partition total_ms: the evaluator carries a component vector through the
/// same max() chains that produce the scalar total, so
/// `send + recv + compute + gather == total_ms` to within accumulated
/// floating-point rounding (far inside the 1e-6 ms invariant tolerance).
///
/// Classification: every inter-device transfer feeding the stem or a block
/// tile splits into a serialization leg (`send_ms`, the bandwidth component)
/// and a propagation leg (`recv_ms`, the path-delay component); transfers
/// into the head plus the final logits return are `gather_ms` whole; device
/// busy time on the path is `compute_ms`.
///
/// The per-device vectors are playout-wide (every event, not just the
/// critical path): indexed by device, serialization charged to the sender,
/// propagation to the receiver, compute to the busy device.
struct PhaseBreakdown {
  double send_ms = 0.0;
  double recv_ms = 0.0;
  double compute_ms = 0.0;
  double gather_ms = 0.0;
  std::vector<double> device_send_ms;
  std::vector<double> device_recv_ms;
  std::vector<double> device_compute_ms;

  double critical_total_ms() const noexcept {
    return send_ms + recv_ms + compute_ms + gather_ms;
  }
};

class SubnetLatencyEvaluator {
 public:
  explicit SubnetLatencyEvaluator(const netsim::Network& network)
      : network_(network) {}

  /// Latency of one inference (image starts on device 0; logits must
  /// arrive back at device 0). If `timeline` is non-null it receives one
  /// event per compute/transfer for Gantt rendering.
  LatencyBreakdown evaluate(const supernet::SubnetConfig& config,
                            const PlacementPlan& plan,
                            Timeline* timeline = nullptr,
                            PhaseBreakdown* phases = nullptr) const {
    return evaluate_batch(config, plan, 1, timeline, phases);
  }

  /// Latency of a strategy-coalesced micro-batch of `batch` same-strategy
  /// inferences executed as one fused pass (DESIGN.md §5.10): every tile's
  /// compute and every message's payload scale with the batch size, but
  /// each message's fixed path delay — and the per-block scaffolding the
  /// event playout models — is paid once per batch. `batch == 1` is
  /// bitwise identical to evaluate(). Dividing total_ms by `batch` gives
  /// the per-member executor occupancy used by serving admission.
  ///
  /// `phases`, when non-null, receives the critical-path decomposition
  /// (see PhaseBreakdown). The scalar playout is byte-identical with or
  /// without it — attribution rides alongside, it never re-derives — but
  /// the decomposition costs a parallel component chain, so the RL hot
  /// path (decision evaluations) passes nullptr.
  LatencyBreakdown evaluate_batch(const supernet::SubnetConfig& config,
                                  const PlacementPlan& plan, int batch,
                                  Timeline* timeline = nullptr,
                                  PhaseBreakdown* phases = nullptr) const;

  /// Convenience: total milliseconds only.
  double latency_ms(const supernet::SubnetConfig& config,
                    const PlacementPlan& plan) const {
    return evaluate(config, plan).total_ms;
  }

  /// Convenience: fused-batch total milliseconds only.
  double batch_latency_ms(const supernet::SubnetConfig& config,
                          const PlacementPlan& plan, int batch) const {
    return evaluate_batch(config, plan, batch).total_ms;
  }

 private:
  const netsim::Network& network_;
};

/// Fractional area of `a` covered by `b` (extents on the same lattice).
double overlap_fraction(const TileExtent& a, const TileExtent& b) noexcept;

}  // namespace murmur::partition
