#include "partition/plan.h"

#include <bitset>
#include <sstream>

namespace murmur::partition {

bool PlacementPlan::valid(const supernet::SubnetConfig& config,
                          std::size_t num_devices) const noexcept {
  if (stem_device >= num_devices || head_device >= num_devices) return false;
  for (int b = 0; b < kMaxBlocks; ++b) {
    if (!config.block_active(b)) continue;
    const int tiles = config.blocks[static_cast<std::size_t>(b)].grid.tiles();
    for (int t = 0; t < tiles; ++t)
      if (device[static_cast<std::size_t>(b)][static_cast<std::size_t>(t)] >=
          num_devices)
        return false;
  }
  return true;
}

int PlacementPlan::devices_used(
    const supernet::SubnetConfig& config) const noexcept {
  std::bitset<256> used;
  used.set(stem_device);
  used.set(head_device);
  for (int b = 0; b < kMaxBlocks; ++b) {
    if (!config.block_active(b)) continue;
    const int tiles = config.blocks[static_cast<std::size_t>(b)].grid.tiles();
    for (int t = 0; t < tiles; ++t)
      used.set(device[static_cast<std::size_t>(b)][static_cast<std::size_t>(t)]);
  }
  return static_cast<int>(used.count());
}

std::uint64_t PlacementPlan::hash() const noexcept {
  std::uint64_t h = 0x51ed270b9bb4c1f5ULL ^ stem_device ^
                    (static_cast<std::uint64_t>(head_device) << 8);
  for (const auto& row : device)
    for (std::uint8_t d : row)
      h ^= d + 0x9E3779B97f4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

namespace {
inline bool healthy_at(const std::vector<bool>& healthy,
                       std::uint8_t device) noexcept {
  return device < healthy.size() && healthy[device];
}
}  // namespace

bool plan_uses_unhealthy(const PlacementPlan& plan,
                         const supernet::SubnetConfig& config,
                         const std::vector<bool>& healthy) noexcept {
  if (!healthy_at(healthy, plan.stem_device) ||
      !healthy_at(healthy, plan.head_device))
    return true;
  for (int b = 0; b < kMaxBlocks; ++b) {
    if (!config.block_active(b)) continue;
    const int tiles = config.blocks[static_cast<std::size_t>(b)].grid.tiles();
    for (int t = 0; t < tiles; ++t)
      if (!healthy_at(healthy,
                      plan.device[static_cast<std::size_t>(b)]
                                 [static_cast<std::size_t>(t)]))
        return true;
  }
  return false;
}

std::vector<bool> plan_participants(const PlacementPlan& plan,
                                    const supernet::SubnetConfig& config,
                                    std::size_t num_devices) {
  std::vector<bool> used(num_devices, false);
  const auto mark = [&](std::uint8_t d) {
    if (d < used.size()) used[d] = true;
  };
  mark(plan.stem_device);
  mark(plan.head_device);
  for (int b = 0; b < kMaxBlocks; ++b) {
    if (!config.block_active(b)) continue;
    const int tiles = config.blocks[static_cast<std::size_t>(b)].grid.tiles();
    for (int t = 0; t < tiles; ++t)
      mark(plan.device[static_cast<std::size_t>(b)][static_cast<std::size_t>(t)]);
  }
  return used;
}

int remap_unhealthy(PlacementPlan& plan, const supernet::SubnetConfig& config,
                    const std::vector<bool>& healthy) noexcept {
  std::vector<std::uint8_t> survivors;
  for (std::size_t d = 0; d < healthy.size(); ++d)
    if (healthy[d]) survivors.push_back(static_cast<std::uint8_t>(d));
  if (survivors.empty()) return 0;
  int remapped = 0;
  if (!healthy_at(healthy, plan.stem_device)) {
    plan.stem_device = survivors.front();
    ++remapped;
  }
  if (!healthy_at(healthy, plan.head_device)) {
    plan.head_device = survivors.front();
    ++remapped;
  }
  for (int b = 0; b < kMaxBlocks; ++b) {
    if (!config.block_active(b)) continue;
    const int tiles = config.blocks[static_cast<std::size_t>(b)].grid.tiles();
    for (int t = 0; t < tiles; ++t) {
      auto& dev = plan.device[static_cast<std::size_t>(b)]
                             [static_cast<std::size_t>(t)];
      if (healthy_at(healthy, dev)) continue;
      dev = survivors[static_cast<std::size_t>(b + t) % survivors.size()];
      ++remapped;
    }
  }
  return remapped;
}

std::string PlacementPlan::to_string(
    const supernet::SubnetConfig& config) const {
  std::ostringstream os;
  os << "stem@d" << static_cast<int>(stem_device);
  for (int b = 0; b < kMaxBlocks; ++b) {
    if (!config.block_active(b)) continue;
    const int tiles = config.blocks[static_cast<std::size_t>(b)].grid.tiles();
    os << " b" << b << "[";
    for (int t = 0; t < tiles; ++t)
      os << (t ? "," : "")
         << static_cast<int>(
                device[static_cast<std::size_t>(b)][static_cast<std::size_t>(t)]);
    os << "]";
  }
  os << " head@d" << static_cast<int>(head_device);
  return os.str();
}

}  // namespace murmur::partition
