#include "partition/subnet_latency.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "supernet/cost_model.h"

namespace murmur::partition {

using supernet::CostModel;
using supernet::SubnetConfig;

double overlap_fraction(const TileExtent& a, const TileExtent& b) noexcept {
  const int h = std::max(0, std::min(a.h0 + a.h, b.h0 + b.h) -
                                std::max(a.h0, b.h0));
  const int w = std::max(0, std::min(a.w0 + a.w, b.w0 + b.w) -
                                std::max(a.w0, b.w0));
  const double area = static_cast<double>(a.h) * a.w;
  return area > 0 ? (static_cast<double>(h) * w) / area : 0.0;
}

LatencyBreakdown SubnetLatencyEvaluator::evaluate_batch(
    const SubnetConfig& config, const PlacementPlan& plan, int batch,
    Timeline* timeline, PhaseBreakdown* phases) const {
  LatencyBreakdown out;
  // Fused-batch scaling: payload bytes and device busy time grow with the
  // batch; message count, path delays, and the event structure do not.
  // bn == 1.0 reproduces the single-request playout bit for bit.
  const double bn = static_cast<double>(std::max(1, batch));
  const std::size_t n_dev = network_.num_devices();
  std::vector<double> device_free(n_dev, 0.0);

  // Current data layout: a set of tiles (extent on the current lattice,
  // owning device, ready time, wire bytes of the full current map).
  struct Piece {
    TileExtent extent;
    int device = 0;
    double ready = 0.0;
  };
  std::vector<Piece> pieces;

  // Attribution rides alongside the scalar playout when `phases` is set: a
  // component vector (send/recv/compute/gather summing to its time point)
  // is carried through exactly the same max() chains that produce the
  // scalar times — each comparison below picks the vector of whichever
  // scalar argument std::max picks (first argument on ties), so the
  // decomposition always describes the actual critical path and the
  // scalar arithmetic stays byte-identical whether or not phases is null.
  struct Vec {
    double send = 0.0, recv = 0.0, compute = 0.0, gather = 0.0;
  };
  std::vector<Vec> device_free_vec, piece_vecs;
  if (phases) {
    device_free_vec.assign(n_dev, Vec{});
    phases->device_send_ms.assign(n_dev, 0.0);
    phases->device_recv_ms.assign(n_dev, 0.0);
    phases->device_compute_ms.assign(n_dev, 0.0);
  }

  auto charge_transfer = [&](int src, int dst, double bytes, double start,
                             const std::string& label) {
    if (src == dst || bytes <= 0.0) return 0.0;
    const double t = network_.transfer_ms(static_cast<std::size_t>(src),
                                          static_cast<std::size_t>(dst), bytes);
    out.comm_ms += t;
    ++out.messages;
    out.bytes_moved += static_cast<std::size_t>(bytes);
    if (timeline) timeline->add_transfer(src, dst, start, start + t, label);
    return t;
  };

  // Split an already-charged transfer into its serialization (bandwidth)
  // and propagation (path-delay) legs: serialization = t - delay, so the
  // two legs sum back to t exactly. Charges the per-device slices: the
  // sender serializes, the receiver waits out the propagation.
  auto split_transfer = [&](int src, int dst, double t) {
    std::pair<double, double> legs{0.0, 0.0};  // {send, recv}
    if (src == dst || t <= 0.0) return legs;
    const double delay = network_.path_delay_ms(static_cast<std::size_t>(src),
                                                static_cast<std::size_t>(dst));
    legs.first = t - delay;
    legs.second = delay;
    phases->device_send_ms[static_cast<std::size_t>(src)] += legs.first;
    phases->device_recv_ms[static_cast<std::size_t>(dst)] += legs.second;
    return legs;
  };

  // --- Stem: image lives on device 0. --------------------------------
  const int stem_dev = plan.stem_device;
  double t0 = charge_transfer(
      0, stem_dev, static_cast<double>(CostModel::input_bytes(config)) * bn,
      0.0, "input");
  const double stem_compute =
      network_.device(static_cast<std::size_t>(stem_dev))
          .throughput.compute_ms(CostModel::stem_flops(config)) *
      bn;
  out.compute_ms += stem_compute;
  const double stem_start =
      std::max(t0, device_free[static_cast<std::size_t>(stem_dev)]);
  const double stem_ready = stem_start + stem_compute;
  if (timeline)
    timeline->add_compute(stem_dev, stem_start, stem_ready, "stem");
  if (phases) {
    Vec v;  // device_free is all-zero here, so t0 is the start unless tied
    const auto legs = split_transfer(0, stem_dev, t0);
    if (!(t0 < device_free[static_cast<std::size_t>(stem_dev)])) {
      v.send = legs.first;
      v.recv = legs.second;
    }
    v.compute += stem_compute;
    phases->device_compute_ms[static_cast<std::size_t>(stem_dev)] +=
        stem_compute;
    device_free_vec[static_cast<std::size_t>(stem_dev)] = v;
    piece_vecs.push_back(v);
  }
  device_free[static_cast<std::size_t>(stem_dev)] = stem_ready;
  const int stem_spatial = config.resolution / 2;
  pieces.push_back(Piece{TileExtent{0, 0, stem_spatial, stem_spatial},
                         stem_dev, stem_ready});
  // Stem output travels as fp32 (quantization applies to block outputs).
  double current_wire_bytes =
      static_cast<double>(CostModel::stem_out_elements(config)) * 4.0;

  // --- Blocks ----------------------------------------------------------
  for (int b = 0; b < supernet::kMaxBlocks; ++b) {
    if (!config.block_active(b)) continue;
    const auto& bc = config.blocks[static_cast<std::size_t>(b)];
    const auto geo = CostModel::block_geometry(config, b);
    const auto in_extents =
        tile_extents(geo.in_spatial, geo.in_spatial, bc.grid);
    // Effective fp32 FLOPs: int8-quantized blocks execute their conv
    // stages at the calibrated int8 per-MAC rate (CostModel::
    // mac_cost_factor), so cheaper compute shows up in planned latency —
    // and, via the occupancy model, in admission reservations.
    const double tile_flops = CostModel::block_tile_effective_flops(config, b);
    const double full_area =
        static_cast<double>(geo.in_spatial) * geo.in_spatial;

    std::vector<Piece> next;
    next.reserve(in_extents.size());
    std::vector<Vec> next_vecs;
    if (phases) next_vecs.reserve(in_extents.size());
    for (std::size_t t = 0; t < in_extents.size(); ++t) {
      const int dev = plan.device[static_cast<std::size_t>(b)][t];
      const std::string label =
          "b" + std::to_string(b) + "/t" + std::to_string(t);
      // Gather every overlapping region of the previous layout.
      double arrival = 0.0;
      Vec arrival_vec;
      for (std::size_t pi = 0; pi < pieces.size(); ++pi) {
        const auto& p = pieces[pi];
        const double frac_of_map =
            overlap_fraction(in_extents[t], p.extent) *
            (static_cast<double>(in_extents[t].h) * in_extents[t].w) /
            full_area;
        if (frac_of_map <= 0.0) continue;
        const double bytes = current_wire_bytes * frac_of_map * bn;
        const double xfer =
            charge_transfer(p.device, dev, bytes, p.ready, label);
        if (phases) {
          const auto legs = split_transfer(p.device, dev, xfer);
          if (arrival < p.ready + xfer) {  // the max below picks this arm
            arrival_vec = piece_vecs[pi];
            arrival_vec.send += legs.first;
            arrival_vec.recv += legs.second;
          }
        }
        arrival = std::max(arrival, p.ready + xfer);
        if (p.device != dev)
          out.critical_comm_ms = std::max(out.critical_comm_ms, xfer);
      }
      const double start =
          std::max(arrival, device_free[static_cast<std::size_t>(dev)]);
      const double compute =
          network_.device(static_cast<std::size_t>(dev))
              .throughput.compute_ms(tile_flops) *
          bn;
      out.compute_ms += compute;
      const double finish = start + compute;
      if (timeline) timeline->add_compute(dev, start, finish, label);
      if (phases) {
        Vec v = arrival < device_free[static_cast<std::size_t>(dev)]
                    ? device_free_vec[static_cast<std::size_t>(dev)]
                    : arrival_vec;
        v.compute += compute;
        phases->device_compute_ms[static_cast<std::size_t>(dev)] += compute;
        device_free_vec[static_cast<std::size_t>(dev)] = v;
        next_vecs.push_back(v);
      }
      device_free[static_cast<std::size_t>(dev)] = finish;
      // Output tile extent on the out lattice.
      next.push_back(Piece{TileExtent{in_extents[t].h0 / geo.stride,
                                      in_extents[t].w0 / geo.stride,
                                      std::max(1, in_extents[t].h / geo.stride),
                                      std::max(1, in_extents[t].w / geo.stride)},
                           dev, finish});
    }
    pieces = std::move(next);
    piece_vecs = std::move(next_vecs);
    current_wire_bytes =
        static_cast<double>(CostModel::block_out_wire_bytes(config, b));
  }

  // --- Head: gather the final map, classify, return logits to local. ---
  const int head_dev = plan.head_device;
  double head_input_ready = 0.0;
  Vec head_ready_vec;
  double total_area = 0.0;
  for (const auto& p : pieces) total_area += static_cast<double>(p.extent.h) * p.extent.w;
  for (std::size_t pi = 0; pi < pieces.size(); ++pi) {
    const auto& p = pieces[pi];
    const double frac = (static_cast<double>(p.extent.h) * p.extent.w) /
                        std::max(1.0, total_area);
    const double xfer = charge_transfer(p.device, head_dev,
                                        current_wire_bytes * frac * bn,
                                        p.ready, "gather");
    if (phases) {
      split_transfer(p.device, head_dev, xfer);  // per-device slices only
      if (head_input_ready < p.ready + xfer) {
        head_ready_vec = piece_vecs[pi];
        head_ready_vec.gather += xfer;  // head-side gather, charged whole
      }
    }
    head_input_ready = std::max(head_input_ready, p.ready + xfer);
  }
  const double head_compute =
      network_.device(static_cast<std::size_t>(head_dev))
          .throughput.compute_ms(CostModel::head_flops(config)) *
      bn;
  out.compute_ms += head_compute;
  const double head_start =
      std::max(head_input_ready,
               device_free[static_cast<std::size_t>(head_dev)]);
  double finish = head_start + head_compute;
  if (timeline) timeline->add_compute(head_dev, head_start, finish, "head");
  // Logits back to the local device (1000 fp32 values).
  const double logits_xfer =
      charge_transfer(head_dev, 0, 1000.0 * 4.0 * bn, finish, "logits");
  finish += logits_xfer;
  if (phases) {
    Vec v = head_input_ready < device_free[static_cast<std::size_t>(head_dev)]
                ? device_free_vec[static_cast<std::size_t>(head_dev)]
                : head_ready_vec;
    v.compute += head_compute;
    phases->device_compute_ms[static_cast<std::size_t>(head_dev)] +=
        head_compute;
    split_transfer(head_dev, 0, logits_xfer);  // per-device slices only
    v.gather += logits_xfer;
    phases->send_ms = v.send;
    phases->recv_ms = v.recv;
    phases->compute_ms = v.compute;
    phases->gather_ms = v.gather;
  }
  out.total_ms = finish;
  return out;
}

}  // namespace murmur::partition
