#include "partition/subnet_latency.h"

#include <algorithm>
#include <string>
#include <vector>

#include "supernet/cost_model.h"

namespace murmur::partition {

using supernet::CostModel;
using supernet::SubnetConfig;

double overlap_fraction(const TileExtent& a, const TileExtent& b) noexcept {
  const int h = std::max(0, std::min(a.h0 + a.h, b.h0 + b.h) -
                                std::max(a.h0, b.h0));
  const int w = std::max(0, std::min(a.w0 + a.w, b.w0 + b.w) -
                                std::max(a.w0, b.w0));
  const double area = static_cast<double>(a.h) * a.w;
  return area > 0 ? (static_cast<double>(h) * w) / area : 0.0;
}

LatencyBreakdown SubnetLatencyEvaluator::evaluate_batch(
    const SubnetConfig& config, const PlacementPlan& plan, int batch,
    Timeline* timeline) const {
  LatencyBreakdown out;
  // Fused-batch scaling: payload bytes and device busy time grow with the
  // batch; message count, path delays, and the event structure do not.
  // bn == 1.0 reproduces the single-request playout bit for bit.
  const double bn = static_cast<double>(std::max(1, batch));
  const std::size_t n_dev = network_.num_devices();
  std::vector<double> device_free(n_dev, 0.0);

  // Current data layout: a set of tiles (extent on the current lattice,
  // owning device, ready time, wire bytes of the full current map).
  struct Piece {
    TileExtent extent;
    int device = 0;
    double ready = 0.0;
  };
  std::vector<Piece> pieces;

  auto charge_transfer = [&](int src, int dst, double bytes, double start,
                             const std::string& label) {
    if (src == dst || bytes <= 0.0) return 0.0;
    const double t = network_.transfer_ms(static_cast<std::size_t>(src),
                                          static_cast<std::size_t>(dst), bytes);
    out.comm_ms += t;
    ++out.messages;
    out.bytes_moved += static_cast<std::size_t>(bytes);
    if (timeline) timeline->add_transfer(src, dst, start, start + t, label);
    return t;
  };

  // --- Stem: image lives on device 0. --------------------------------
  const int stem_dev = plan.stem_device;
  double t0 = charge_transfer(
      0, stem_dev, static_cast<double>(CostModel::input_bytes(config)) * bn,
      0.0, "input");
  const double stem_compute =
      network_.device(static_cast<std::size_t>(stem_dev))
          .throughput.compute_ms(CostModel::stem_flops(config)) *
      bn;
  out.compute_ms += stem_compute;
  const double stem_start =
      std::max(t0, device_free[static_cast<std::size_t>(stem_dev)]);
  const double stem_ready = stem_start + stem_compute;
  if (timeline)
    timeline->add_compute(stem_dev, stem_start, stem_ready, "stem");
  device_free[static_cast<std::size_t>(stem_dev)] = stem_ready;
  const int stem_spatial = config.resolution / 2;
  pieces.push_back(Piece{TileExtent{0, 0, stem_spatial, stem_spatial},
                         stem_dev, stem_ready});
  // Stem output travels as fp32 (quantization applies to block outputs).
  double current_wire_bytes =
      static_cast<double>(CostModel::stem_out_elements(config)) * 4.0;

  // --- Blocks ----------------------------------------------------------
  for (int b = 0; b < supernet::kMaxBlocks; ++b) {
    if (!config.block_active(b)) continue;
    const auto& bc = config.blocks[static_cast<std::size_t>(b)];
    const auto geo = CostModel::block_geometry(config, b);
    const auto in_extents =
        tile_extents(geo.in_spatial, geo.in_spatial, bc.grid);
    const double tile_flops = CostModel::block_tile_flops(config, b);
    const double full_area =
        static_cast<double>(geo.in_spatial) * geo.in_spatial;

    std::vector<Piece> next;
    next.reserve(in_extents.size());
    for (std::size_t t = 0; t < in_extents.size(); ++t) {
      const int dev = plan.device[static_cast<std::size_t>(b)][t];
      const std::string label =
          "b" + std::to_string(b) + "/t" + std::to_string(t);
      // Gather every overlapping region of the previous layout.
      double arrival = 0.0;
      for (const auto& p : pieces) {
        const double frac_of_map =
            overlap_fraction(in_extents[t], p.extent) *
            (static_cast<double>(in_extents[t].h) * in_extents[t].w) /
            full_area;
        if (frac_of_map <= 0.0) continue;
        const double bytes = current_wire_bytes * frac_of_map * bn;
        const double xfer =
            charge_transfer(p.device, dev, bytes, p.ready, label);
        arrival = std::max(arrival, p.ready + xfer);
        if (p.device != dev)
          out.critical_comm_ms = std::max(out.critical_comm_ms, xfer);
      }
      const double start =
          std::max(arrival, device_free[static_cast<std::size_t>(dev)]);
      const double compute =
          network_.device(static_cast<std::size_t>(dev))
              .throughput.compute_ms(tile_flops) *
          bn;
      out.compute_ms += compute;
      const double finish = start + compute;
      if (timeline) timeline->add_compute(dev, start, finish, label);
      device_free[static_cast<std::size_t>(dev)] = finish;
      // Output tile extent on the out lattice.
      next.push_back(Piece{TileExtent{in_extents[t].h0 / geo.stride,
                                      in_extents[t].w0 / geo.stride,
                                      std::max(1, in_extents[t].h / geo.stride),
                                      std::max(1, in_extents[t].w / geo.stride)},
                           dev, finish});
    }
    pieces = std::move(next);
    current_wire_bytes =
        static_cast<double>(CostModel::block_out_wire_bytes(config, b));
  }

  // --- Head: gather the final map, classify, return logits to local. ---
  const int head_dev = plan.head_device;
  double head_input_ready = 0.0;
  double total_area = 0.0;
  for (const auto& p : pieces) total_area += static_cast<double>(p.extent.h) * p.extent.w;
  for (const auto& p : pieces) {
    const double frac = (static_cast<double>(p.extent.h) * p.extent.w) /
                        std::max(1.0, total_area);
    const double xfer = charge_transfer(p.device, head_dev,
                                        current_wire_bytes * frac * bn,
                                        p.ready, "gather");
    head_input_ready = std::max(head_input_ready, p.ready + xfer);
  }
  const double head_compute =
      network_.device(static_cast<std::size_t>(head_dev))
          .throughput.compute_ms(CostModel::head_flops(config)) *
      bn;
  out.compute_ms += head_compute;
  const double head_start =
      std::max(head_input_ready,
               device_free[static_cast<std::size_t>(head_dev)]);
  double finish = head_start + head_compute;
  if (timeline) timeline->add_compute(head_dev, head_start, finish, "head");
  // Logits back to the local device (1000 fp32 values).
  finish += charge_transfer(head_dev, 0, 1000.0 * 4.0 * bn, finish, "logits");
  out.total_ms = finish;
  return out;
}

}  // namespace murmur::partition
