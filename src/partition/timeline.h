// Execution timeline: per-device record of what a partitioned inference
// does and when (simulated time). Filled by the latency evaluator on
// request; rendered as an ASCII Gantt chart for debugging placements and
// understanding where a strategy's time goes.
#pragma once

#include <string>
#include <vector>

namespace murmur::partition {

struct TimelineEvent {
  enum class Kind { kCompute, kTransfer };
  Kind kind = Kind::kCompute;
  double start_ms = 0.0;
  double end_ms = 0.0;
  int device = 0;       // executing device (compute) or destination (transfer)
  int src_device = -1;  // transfer source (-1 for compute)
  std::string label;    // e.g. "b7/t2" or "stem"
};

class Timeline {
 public:
  void add_compute(int device, double start_ms, double end_ms,
                   std::string label);
  void add_transfer(int src, int dst, double start_ms, double end_ms,
                    std::string label);
  void clear() { events_.clear(); }

  const std::vector<TimelineEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  double makespan_ms() const noexcept;
  /// Total busy (compute) time of one device.
  double device_busy_ms(int device) const noexcept;
  /// Fraction of the makespan device `device` spends computing.
  double device_utilization(int device) const noexcept;

  /// ASCII Gantt chart: one lane per device, '#' compute, '~' transfer-in.
  /// `width` = characters representing the full makespan.
  std::string render(std::size_t num_devices, std::size_t width = 72) const;

 private:
  std::vector<TimelineEvent> events_;
};

}  // namespace murmur::partition
