#include "partition/timeline.h"

#include <algorithm>
#include <sstream>

namespace murmur::partition {

void Timeline::add_compute(int device, double start_ms, double end_ms,
                           std::string label) {
  events_.push_back(TimelineEvent{TimelineEvent::Kind::kCompute, start_ms,
                                  end_ms, device, -1, std::move(label)});
}

void Timeline::add_transfer(int src, int dst, double start_ms, double end_ms,
                            std::string label) {
  events_.push_back(TimelineEvent{TimelineEvent::Kind::kTransfer, start_ms,
                                  end_ms, dst, src, std::move(label)});
}

double Timeline::makespan_ms() const noexcept {
  double end = 0.0;
  for (const auto& e : events_) end = std::max(end, e.end_ms);
  return end;
}

double Timeline::device_busy_ms(int device) const noexcept {
  double busy = 0.0;
  for (const auto& e : events_)
    if (e.kind == TimelineEvent::Kind::kCompute && e.device == device)
      busy += e.end_ms - e.start_ms;
  return busy;
}

double Timeline::device_utilization(int device) const noexcept {
  const double total = makespan_ms();
  return total > 0.0 ? device_busy_ms(device) / total : 0.0;
}

std::string Timeline::render(std::size_t num_devices,
                             std::size_t width) const {
  const double total = makespan_ms();
  std::ostringstream os;
  os << "timeline (makespan " << total << " ms, '#'=compute '~'=incoming "
     << "transfer)\n";
  if (total <= 0.0 || width == 0) return os.str();
  const double per_char = total / static_cast<double>(width);
  for (std::size_t d = 0; d < num_devices; ++d) {
    std::string lane(width, '.');
    // Transfers first so compute overwrites where both occur.
    for (const auto& e : events_) {
      if (e.device != static_cast<int>(d)) continue;
      auto c0 = static_cast<std::size_t>(e.start_ms / per_char);
      auto c1 = static_cast<std::size_t>(e.end_ms / per_char);
      c0 = std::min(c0, width - 1);
      c1 = std::min(std::max(c1, c0 + 1), width);
      const char mark =
          e.kind == TimelineEvent::Kind::kCompute ? '#' : '~';
      for (std::size_t c = c0; c < c1; ++c)
        if (mark == '#' || lane[c] == '.') lane[c] = mark;
    }
    os << "dev" << d << " |" << lane << "| busy "
       << static_cast<int>(100.0 * device_utilization(static_cast<int>(d)))
       << "%\n";
  }
  return os.str();
}

}  // namespace murmur::partition
