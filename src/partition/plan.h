// Placement plan: which device executes each spatial tile of each block.
//
// Together, (SubnetConfig, PlacementPlan) is one complete Murmuration
// strategy — the joint "model selection and partitioning" decision the RL
// policy emits (paper §4.2: actions a^k_y for model settings, a^k_p for
// per-partition device selection).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "supernet/subnet_config.h"

namespace murmur::partition {

using supernet::kMaxBlocks;
using supernet::kMaxPartitions;

struct PlacementPlan {
  /// device[b][t]: device executing tile t of block b. Entries beyond the
  /// block's configured tile count are ignored.
  std::array<std::array<std::uint8_t, kMaxPartitions>, kMaxBlocks> device{};
  std::uint8_t stem_device = 0;
  std::uint8_t head_device = 0;

  bool operator==(const PlacementPlan&) const = default;

  /// Everything on the local device.
  static PlacementPlan all_local() noexcept { return PlacementPlan{}; }

  /// True if every referenced device id is < num_devices.
  bool valid(const supernet::SubnetConfig& config,
             std::size_t num_devices) const noexcept;

  /// Number of distinct devices this plan actually uses.
  int devices_used(const supernet::SubnetConfig& config) const noexcept;

  std::uint64_t hash() const noexcept;
  std::string to_string(const supernet::SubnetConfig& config) const;
};

}  // namespace murmur::partition
