// Placement plan: which device executes each spatial tile of each block.
//
// Together, (SubnetConfig, PlacementPlan) is one complete Murmuration
// strategy — the joint "model selection and partitioning" decision the RL
// policy emits (paper §4.2: actions a^k_y for model settings, a^k_p for
// per-partition device selection).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "supernet/subnet_config.h"

namespace murmur::partition {

using supernet::kMaxBlocks;
using supernet::kMaxPartitions;

struct PlacementPlan {
  /// device[b][t]: device executing tile t of block b. Entries beyond the
  /// block's configured tile count are ignored.
  std::array<std::array<std::uint8_t, kMaxPartitions>, kMaxBlocks> device{};
  std::uint8_t stem_device = 0;
  std::uint8_t head_device = 0;

  bool operator==(const PlacementPlan&) const = default;

  /// Everything on the local device.
  static PlacementPlan all_local() noexcept { return PlacementPlan{}; }

  /// True if every referenced device id is < num_devices.
  bool valid(const supernet::SubnetConfig& config,
             std::size_t num_devices) const noexcept;

  /// Number of distinct devices this plan actually uses.
  int devices_used(const supernet::SubnetConfig& config) const noexcept;

  std::uint64_t hash() const noexcept;
  std::string to_string(const supernet::SubnetConfig& config) const;
};

/// True if the plan places any work (stem, head, or a tile of an active
/// block) on a device whose `healthy` entry is false. Device ids beyond
/// `healthy.size()` count as unhealthy.
bool plan_uses_unhealthy(const PlacementPlan& plan,
                         const supernet::SubnetConfig& config,
                         const std::vector<bool>& healthy) noexcept;

/// used[d]: the plan places the stem, head, or any active tile on device d.
/// Shared by the runtime's breaker feeding, the flight recorder's device
/// mask and the adaptation layer's latency-calibration attribution.
std::vector<bool> plan_participants(const PlacementPlan& plan,
                                    const supernet::SubnetConfig& config,
                                    std::size_t num_devices);

/// Failover re-planning: rewrite every reference to an unhealthy device —
/// stem/head fall back to the first healthy device, tiles deal round-robin
/// across the healthy set so spatial spread survives where possible.
/// Returns the number of entries rewritten (0 if the plan was clean or no
/// healthy device exists).
int remap_unhealthy(PlacementPlan& plan, const supernet::SubnetConfig& config,
                    const std::vector<bool>& healthy) noexcept;

}  // namespace murmur::partition
