#include "vit/vit.h"

#include <cassert>
#include <cmath>

namespace murmur::vit {

VisionTransformer::VisionTransformer(VitOptions opts) : opts_(opts) {
  assert(opts.image_size % opts.patch_size == 0);
  const int per_side = opts.image_size / opts.patch_size;
  tokens_ = per_side * per_side;
  Rng rng(opts.seed);
  const int patch_dim = 3 * opts.patch_size * opts.patch_size;
  patch_embed_ = std::make_unique<TokenLinear>(patch_dim, opts.dim, rng);
  pos_embed_ = Tensor::randn({tokens_, opts.dim}, rng, 0.0f, 0.02f);
  for (int i = 0; i < opts.max_depth; ++i)
    blocks_.push_back(std::make_unique<TransformerBlock>(
        opts.dim, opts.heads, opts.mlp_ratio, rng));
  final_ln_ = std::make_unique<LayerNorm>(opts.dim);
  head_ = std::make_unique<TokenLinear>(opts.dim, opts.classes, rng);
}

Tensor VisionTransformer::embed(const Tensor& image) const {
  assert(image.rank() == 4 && image.dim(0) == 1 && image.dim(1) == 3);
  assert(image.dim(2) == opts_.image_size && image.dim(3) == opts_.image_size);
  const int p = opts_.patch_size;
  const int per_side = opts_.image_size / p;
  const int patch_dim = 3 * p * p;
  Tensor patches({tokens_, patch_dim});
  for (int py = 0; py < per_side; ++py)
    for (int px = 0; px < per_side; ++px) {
      const int t = py * per_side + px;
      int idx = 0;
      for (int c = 0; c < 3; ++c)
        for (int y = 0; y < p; ++y)
          for (int x = 0; x < p; ++x, ++idx)
            patches.at(t, idx) = image.at(0, c, py * p + y, px * p + x);
    }
  Tensor tokens = patch_embed_->forward(patches);
  tokens.add_(pos_embed_);
  return tokens;
}

Tensor VisionTransformer::forward_block(int i, const Tensor& tokens,
                                        int groups) const {
  assert(i >= 0 && i < static_cast<int>(blocks_.size()));
  return blocks_[static_cast<std::size_t>(i)]->forward(tokens, groups);
}

Tensor VisionTransformer::classify(const Tensor& tokens) const {
  const Tensor normed = final_ln_->forward(tokens);
  Tensor pooled({1, opts_.dim});
  for (int d = 0; d < opts_.dim; ++d) {
    float s = 0.0f;
    for (int t = 0; t < tokens_; ++t) s += normed.at(t, d);
    pooled.at(0, d) = s / static_cast<float>(tokens_);
  }
  return head_->forward(pooled);
}

Tensor VisionTransformer::forward(const Tensor& image,
                                  const VitConfig& config) const {
  assert(config.depth >= 1 && config.depth <= opts_.max_depth);
  Tensor tokens = embed(image);
  for (int i = 0; i < config.depth; ++i)
    tokens = forward_block(i, tokens, config.groups);
  return classify(tokens);
}

double VisionTransformer::flops(const VitConfig& config) const noexcept {
  const double patch_dim = 3.0 * opts_.patch_size * opts_.patch_size;
  double f = 2.0 * tokens_ * patch_dim * opts_.dim;  // embed
  f += config.depth * TransformerBlock::flops(tokens_, opts_.dim,
                                              opts_.mlp_ratio, config.groups);
  f += 2.0 * opts_.dim * opts_.classes;  // head
  return f;
}

double vit_accuracy_proxy(const VitOptions& opts,
                          const VitConfig& config) noexcept {
  // Same calibration style as the CNN model: a base top-1, monotone
  // penalties for removed depth and coarser attention locality.
  const double base = 78.0;
  const double depth_penalty = 0.6 * (opts.max_depth - config.depth);
  const double group_penalty =
      config.groups <= 1 ? 0.0 : (config.groups == 2 ? 0.5 : 1.1);
  return base - depth_penalty - group_penalty;
}

}  // namespace murmur::vit
