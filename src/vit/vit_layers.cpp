#include "vit/vit_layers.h"

#include <cassert>
#include <cmath>

namespace murmur::vit {

LayerNorm::LayerNorm(int dim) : dim_(dim) {
  gamma_.assign(static_cast<std::size_t>(dim), 1.0f);
  beta_.assign(static_cast<std::size_t>(dim), 0.0f);
}

Tensor LayerNorm::forward(const Tensor& x) const {
  assert(x.rank() == 2 && x.dim(1) == dim_);
  Tensor out = x;
  const int n = x.dim(0);
  for (int t = 0; t < n; ++t) {
    double mean = 0.0;
    for (int d = 0; d < dim_; ++d) mean += x.at(t, d);
    mean /= dim_;
    double var = 0.0;
    for (int d = 0; d < dim_; ++d) {
      const double dd = x.at(t, d) - mean;
      var += dd * dd;
    }
    var /= dim_;
    const float inv = static_cast<float>(1.0 / std::sqrt(var + 1e-5));
    for (int d = 0; d < dim_; ++d)
      out.at(t, d) = gamma_[static_cast<std::size_t>(d)] *
                         (x.at(t, d) - static_cast<float>(mean)) * inv +
                     beta_[static_cast<std::size_t>(d)];
  }
  return out;
}

void gelu_inplace(Tensor& x) noexcept {
  for (auto& v : x.data())
    v = 0.5f * v * (1.0f + std::erf(v / std::sqrt(2.0f)));
}

TokenLinear::TokenLinear(int in, int out, Rng& rng) : in_(in), out_(out) {
  w_ = Tensor::kaiming({out, in}, in, rng);
  b_.assign(static_cast<std::size_t>(out), 0.0f);
}

Tensor TokenLinear::forward(const Tensor& x) const {
  assert(x.rank() == 2 && x.dim(1) == in_);
  const int n = x.dim(0);
  Tensor out({n, out_});
  for (int t = 0; t < n; ++t)
    for (int o = 0; o < out_; ++o) {
      float acc = b_[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_; ++i) acc += w_.at(o, i) * x.at(t, i);
      out.at(t, o) = acc;
    }
  return out;
}

MultiHeadAttention::MultiHeadAttention(int dim, int heads, Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(dim / heads),
      qkv_(dim, 3 * dim, rng),
      proj_(dim, dim, rng) {
  assert(dim % heads == 0);
}

Tensor MultiHeadAttention::attend(const Tensor& x, int t0, int t_count) const {
  // Compute attention over tokens [t0, t0 + t_count).
  Tensor slice({t_count, dim_});
  for (int t = 0; t < t_count; ++t)
    for (int d = 0; d < dim_; ++d) slice.at(t, d) = x.at(t0 + t, d);
  const Tensor qkv = qkv_.forward(slice);  // [t_count, 3*dim]

  Tensor out({t_count, dim_});
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<float> scores(static_cast<std::size_t>(t_count));
  for (int h = 0; h < heads_; ++h) {
    const int q_off = h * head_dim_;
    const int k_off = dim_ + h * head_dim_;
    const int v_off = 2 * dim_ + h * head_dim_;
    for (int i = 0; i < t_count; ++i) {
      // Row-wise softmax(QK^T / sqrt(d)).
      float mx = -1e30f;
      for (int j = 0; j < t_count; ++j) {
        float s = 0.0f;
        for (int d = 0; d < head_dim_; ++d)
          s += qkv.at(i, q_off + d) * qkv.at(j, k_off + d);
        scores[static_cast<std::size_t>(j)] = s * scale;
        mx = std::max(mx, scores[static_cast<std::size_t>(j)]);
      }
      float sum = 0.0f;
      for (int j = 0; j < t_count; ++j) {
        scores[static_cast<std::size_t>(j)] =
            std::exp(scores[static_cast<std::size_t>(j)] - mx);
        sum += scores[static_cast<std::size_t>(j)];
      }
      const float inv = 1.0f / sum;
      for (int d = 0; d < head_dim_; ++d) {
        float acc = 0.0f;
        for (int j = 0; j < t_count; ++j)
          acc += scores[static_cast<std::size_t>(j)] * inv * qkv.at(j, v_off + d);
        out.at(i, q_off + d) = acc;
      }
    }
  }
  return proj_.forward(out);
}

Tensor MultiHeadAttention::forward(const Tensor& x) const {
  return attend(x, 0, x.dim(0));
}

Tensor MultiHeadAttention::forward_grouped(const Tensor& x, int groups) const {
  assert(groups >= 1);
  const int n = x.dim(0);
  if (groups == 1 || groups > n) return forward(x);
  Tensor out({n, dim_});
  const int base = n / groups;
  int t0 = 0;
  for (int g = 0; g < groups; ++g) {
    const int count = g == groups - 1 ? n - t0 : base;
    const Tensor part = attend(x, t0, count);
    for (int t = 0; t < count; ++t)
      for (int d = 0; d < dim_; ++d) out.at(t0 + t, d) = part.at(t, d);
    t0 += count;
  }
  return out;
}

double MultiHeadAttention::flops(int tokens, int dim, int groups) noexcept {
  const double n = tokens;
  const double d = dim;
  const double g = std::max(1, groups);
  // QKV + output projections are group-independent; the n^2 attention map
  // shrinks to g * (n/g)^2 = n^2/g.
  const double proj = 2.0 * n * d * (3.0 * d) + 2.0 * n * d * d;
  const double attn = 2.0 * (n * n / g) * d * 2.0;  // QK^T and AV
  return proj + attn;
}

TransformerBlock::TransformerBlock(int dim, int heads, int mlp_ratio, Rng& rng)
    : ln1_(dim),
      ln2_(dim),
      attn_(dim, heads, rng),
      fc1_(dim, dim * mlp_ratio, rng),
      fc2_(dim * mlp_ratio, dim, rng) {}

Tensor TransformerBlock::forward(const Tensor& x, int groups) const {
  Tensor h = attn_.forward_grouped(ln1_.forward(x), groups);
  h.add_(x);
  Tensor m = fc1_.forward(ln2_.forward(h));
  gelu_inplace(m);
  Tensor out = fc2_.forward(m);
  out.add_(h);
  return out;
}

double TransformerBlock::flops(int tokens, int dim, int mlp_ratio,
                               int groups) noexcept {
  const double mlp = 2.0 * 2.0 * tokens * static_cast<double>(dim) * dim *
                     mlp_ratio;
  return MultiHeadAttention::flops(tokens, dim, groups) + mlp;
}

}  // namespace murmur::vit
