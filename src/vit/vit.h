// A small elastic Vision Transformer with patch-group partitioned
// attention — the paper's stated extension of Murmuration's spatial
// partitioning beyond CNNs (§4.1).
//
// Search-space analogue of the CNN supernet:
//   * elastic depth        (2..kMaxDepth encoder blocks)
//   * patch-group count    (1, 2 or 4 device groups per attention block)
// Patch-group attention restricts each attention block to the tokens of
// one device's patches — zero cross-device traffic inside the block, at an
// accuracy perturbation analogous to FDSP's.
#pragma once

#include <memory>

#include "common/rng.h"
#include "vit/vit_layers.h"

namespace murmur::vit {

struct VitOptions {
  int image_size = 96;
  int patch_size = 16;
  int dim = 64;
  int heads = 4;
  int mlp_ratio = 4;
  int max_depth = 6;
  int classes = 10;
  std::uint64_t seed = 77;
};

struct VitConfig {
  int depth = 6;
  int groups = 1;  // patch-group partitioning of every attention block
};

class VisionTransformer {
 public:
  explicit VisionTransformer(VitOptions opts);
  VisionTransformer() : VisionTransformer(VitOptions{}) {}

  /// Image (1,3,S,S) -> logits (1, classes) under the given config.
  Tensor forward(const Tensor& image, const VitConfig& config) const;

  /// Token embedding of the image (patch flatten + linear + pos embed).
  Tensor embed(const Tensor& image) const;
  /// Run block `i` on a token matrix.
  Tensor forward_block(int i, const Tensor& tokens, int groups) const;
  /// Mean-pool + classify.
  Tensor classify(const Tensor& tokens) const;

  int num_tokens() const noexcept { return tokens_; }
  const VitOptions& options() const noexcept { return opts_; }

  /// Analytic FLOPs of a config (for the cost model / latency evaluator).
  double flops(const VitConfig& config) const noexcept;

 private:
  VitOptions opts_;
  int tokens_;
  std::unique_ptr<TokenLinear> patch_embed_;
  Tensor pos_embed_;  // [tokens, dim]
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::unique_ptr<LayerNorm> final_ln_;
  std::unique_ptr<TokenLinear> head_;
};

/// Accuracy proxy for ViT configs, mirroring the CNN accuracy model's
/// calibration style: full depth / full attention is best; shallower depth
/// and more patch groups cost accuracy.
double vit_accuracy_proxy(const VitOptions& opts, const VitConfig& config) noexcept;

}  // namespace murmur::vit
