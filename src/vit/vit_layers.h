// Transformer building blocks for the Vision-Transformer extension.
//
// Paper §4.1: "this spatial partitioning strategy can also be applied to
// other DNN models such as Vision Transformers, where different image
// patches are sent to different devices for parallel attention
// computation." This module provides the substrate: LayerNorm, GELU,
// token-matrix linear maps and multi-head self-attention with an optional
// *patch-group* restriction — attention computed within per-device token
// groups only, the transformer analogue of FDSP (no cross-device traffic
// inside the block, at a small accuracy perturbation).
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace murmur::vit {

/// Token matrix convention: rank-2 Tensor [tokens, dim].

/// LayerNorm over the feature dimension with learnable gain/bias.
class LayerNorm {
 public:
  explicit LayerNorm(int dim);
  Tensor forward(const Tensor& x) const;
  int dim() const noexcept { return dim_; }

 private:
  int dim_;
  std::vector<float> gamma_, beta_;
};

/// Exact GELU applied elementwise.
void gelu_inplace(Tensor& x) noexcept;

/// Dense map on token matrices: [n, in] -> [n, out].
class TokenLinear {
 public:
  TokenLinear(int in, int out, Rng& rng);
  Tensor forward(const Tensor& x) const;
  int in() const noexcept { return in_; }
  int out() const noexcept { return out_; }
  std::size_t param_bytes() const noexcept {
    return w_.bytes() + b_.size() * sizeof(float);
  }

 private:
  int in_, out_;
  Tensor w_;  // [out, in]
  std::vector<float> b_;
};

/// Multi-head self-attention over [tokens, dim].
class MultiHeadAttention {
 public:
  MultiHeadAttention(int dim, int heads, Rng& rng);

  /// Full attention across all tokens.
  Tensor forward(const Tensor& x) const;

  /// Patch-group attention: tokens are split into `groups` contiguous
  /// groups; attention runs independently within each group (what one
  /// device computes for its patches). groups == 1 is full attention.
  Tensor forward_grouped(const Tensor& x, int groups) const;

  /// FLOPs of one pass over n tokens with the given grouping.
  static double flops(int tokens, int dim, int groups = 1) noexcept;

  int dim() const noexcept { return dim_; }
  int heads() const noexcept { return heads_; }

 private:
  Tensor attend(const Tensor& x, int t0, int t_count) const;
  int dim_, heads_, head_dim_;
  TokenLinear qkv_;   // dim -> 3*dim
  TokenLinear proj_;  // dim -> dim
};

/// Pre-norm transformer encoder block: x + MHA(LN(x)); x + MLP(LN(x)).
class TransformerBlock {
 public:
  TransformerBlock(int dim, int heads, int mlp_ratio, Rng& rng);

  /// `groups` — patch-group partitioning of the attention (1 = full).
  Tensor forward(const Tensor& x, int groups = 1) const;

  static double flops(int tokens, int dim, int mlp_ratio,
                      int groups = 1) noexcept;

 private:
  LayerNorm ln1_, ln2_;
  MultiHeadAttention attn_;
  TokenLinear fc1_, fc2_;
};

}  // namespace murmur::vit
