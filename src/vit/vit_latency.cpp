#include "vit/vit_latency.h"

#include <algorithm>
#include <cassert>

namespace murmur::vit {

VitLatencyBreakdown vit_latency(const VisionTransformer& model,
                                const VitStrategy& strategy,
                                const netsim::Network& network) {
  const auto& cfg = strategy.config;
  assert(static_cast<int>(strategy.group_device.size()) == cfg.groups);
  VitLatencyBreakdown out;

  const auto& opts = model.options();
  const int tokens = model.num_tokens();
  const double token_bytes = static_cast<double>(opts.dim) * sizeof(float);
  const double group_tokens =
      static_cast<double>(tokens) / std::max(1, cfg.groups);

  // Scatter: each remote group's raw patches leave the local device
  // back-to-back over its access link.
  const double patch_bytes =
      3.0 * opts.patch_size * opts.patch_size * sizeof(float) * group_tokens;
  for (int g = 0; g < cfg.groups; ++g) {
    const int dev = strategy.group_device[static_cast<std::size_t>(g)];
    if (dev != 0)
      out.scatter_ms += network.transfer_ms(0, static_cast<std::size_t>(dev),
                                            patch_bytes);
  }

  // Group-parallel blocks: embed + depth * block, each device handling its
  // tokens; grouped attention needs no cross-device exchange.
  const double patch_dim = 3.0 * opts.patch_size * opts.patch_size;
  for (int g = 0; g < cfg.groups; ++g) {
    const int dev = strategy.group_device[static_cast<std::size_t>(g)];
    double flops = 2.0 * group_tokens * patch_dim * opts.dim;  // embed share
    flops += cfg.depth *
             TransformerBlock::flops(static_cast<int>(group_tokens), opts.dim,
                                     opts.mlp_ratio, /*groups=*/1);
    out.compute_ms =
        std::max(out.compute_ms,
                 network.device(static_cast<std::size_t>(dev))
                     .throughput.compute_ms(flops));
  }

  // Gather the final token embeddings back to local for pooling + head.
  for (int g = 0; g < cfg.groups; ++g) {
    const int dev = strategy.group_device[static_cast<std::size_t>(g)];
    if (dev != 0)
      out.gather_ms += network.transfer_ms(static_cast<std::size_t>(dev), 0,
                                           group_tokens * token_bytes);
  }
  const double head_flops = 2.0 * opts.dim * opts.classes +
                            static_cast<double>(tokens) * opts.dim;
  out.total_ms = out.scatter_ms + out.compute_ms + out.gather_ms +
                 network.device(0).throughput.compute_ms(head_flops);
  return out;
}

}  // namespace murmur::vit
