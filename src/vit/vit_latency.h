// Distributed-latency model for the ViT extension: patch groups are
// scattered to devices once, every attention/MLP block runs group-parallel
// with no cross-device traffic (grouped attention is device-local by
// construction), and tokens gather back to the local device for the head.
#pragma once

#include <vector>

#include "netsim/network.h"
#include "vit/vit.h"

namespace murmur::vit {

struct VitStrategy {
  VitConfig config;
  /// Device executing each patch group; size must equal config.groups.
  std::vector<int> group_device;

  static VitStrategy all_local(int depth = 6) {
    return {{depth, 1}, {0}};
  }
};

struct VitLatencyBreakdown {
  double total_ms = 0.0;
  double scatter_ms = 0.0;
  double compute_ms = 0.0;  // critical-path (slowest device) compute
  double gather_ms = 0.0;
};

VitLatencyBreakdown vit_latency(const VisionTransformer& model,
                                const VitStrategy& strategy,
                                const netsim::Network& network);

}  // namespace murmur::vit
