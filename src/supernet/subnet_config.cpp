#include "supernet/subnet_config.h"

#include <sstream>

namespace murmur::supernet {

SubnetConfig SubnetConfig::max_config() noexcept {
  SubnetConfig c;
  c.resolution = kResolutions.back();
  c.stage_depth.fill(kDepthOptions.back());
  for (auto& b : c.blocks) b = BlockConfig{};  // kernel 7, fp32, 1x1
  return c;
}

SubnetConfig SubnetConfig::min_config() noexcept {
  SubnetConfig c;
  c.resolution = kResolutions.front();
  c.stage_depth.fill(kDepthOptions.front());
  for (auto& b : c.blocks) {
    b.kernel = kKernelOptions.front();
    b.quant = QuantBits::k8;
    b.grid = PartitionGrid{1, 1};
  }
  return c;
}

SubnetConfig SubnetConfig::random(Rng& rng) noexcept {
  SubnetConfig c;
  c.resolution =
      kResolutions[rng.uniform_index(kResolutions.size())];
  for (auto& d : c.stage_depth)
    d = kDepthOptions[rng.uniform_index(kDepthOptions.size())];
  for (auto& b : c.blocks) {
    b.kernel = kKernelOptions[rng.uniform_index(kKernelOptions.size())];
    b.quant = kQuantOptions[rng.uniform_index(kQuantOptions.size())];
    b.grid = kGridOptions[rng.uniform_index(kGridOptions.size())];
  }
  return c;
}

bool SubnetConfig::valid() const noexcept {
  if (resolution_index(resolution) < 0) return false;
  for (int d : stage_depth)
    if (depth_index(d) < 0) return false;
  for (const auto& b : blocks) {
    if (kernel_index(b.kernel) < 0) return false;
    if (quant_index(b.quant) < 0) return false;
    if (grid_index(b.grid) < 0) return false;
  }
  return true;
}

std::uint64_t SubnetConfig::hash() const noexcept {
  std::uint64_t h = 0x9E3779B97f4A7C15ULL ^ static_cast<std::uint64_t>(resolution);
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97f4A7C15ULL + (h << 6) + (h >> 2);
  };
  for (int d : stage_depth) mix(static_cast<std::uint64_t>(d));
  for (const auto& b : blocks) {
    mix(static_cast<std::uint64_t>(b.kernel));
    mix(static_cast<std::uint64_t>(bit_count(b.quant)));
    mix(static_cast<std::uint64_t>(b.grid.rows * 16 + b.grid.cols));
  }
  return h;
}

std::string SubnetConfig::to_string() const {
  std::ostringstream os;
  os << "res" << resolution << " depth[";
  for (int s = 0; s < kNumStages; ++s) os << (s ? "," : "") << stage_depth[s];
  os << "]";
  for (int i = 0; i < kMaxBlocks; ++i) {
    if (!block_active(i)) continue;
    const auto& b = blocks[static_cast<std::size_t>(i)];
    os << " b" << i << "(k" << b.kernel << ",q" << bit_count(b.quant) << ","
       << b.grid.rows << "x" << b.grid.cols << ")";
  }
  return os.str();
}

}  // namespace murmur::supernet
