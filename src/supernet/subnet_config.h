// Submodel configuration: one point of the NAS search space.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "supernet/search_space.h"

namespace murmur::supernet {

/// Per-block settings of a sampled submodel.
struct BlockConfig {
  int kernel = 7;
  QuantBits quant = QuantBits::k32;  // output feature-map wire precision
  PartitionGrid grid{1, 1};          // spatial partitioning of this block
  bool operator==(const BlockConfig&) const = default;
};

/// Full submodel configuration. Blocks are indexed
/// `stage * kMaxBlocksPerStage + i`; blocks with i >= stage_depth[stage] are
/// inactive (skipped at execution and costed at zero).
struct SubnetConfig {
  int resolution = 224;
  std::array<int, kNumStages> stage_depth{4, 4, 4, 4, 4};
  std::array<BlockConfig, kMaxBlocks> blocks{};

  bool operator==(const SubnetConfig&) const = default;

  bool block_active(int block) const noexcept {
    return block % kMaxBlocksPerStage <
           stage_depth[static_cast<std::size_t>(block / kMaxBlocksPerStage)];
  }
  int active_blocks() const noexcept {
    int n = 0;
    for (int d : stage_depth) n += d;
    return n;
  }

  /// Largest submodel: full resolution/depth/kernel, fp32, no partitioning.
  static SubnetConfig max_config() noexcept;
  /// Smallest submodel: min resolution/depth/kernel, int8, no partitioning.
  static SubnetConfig min_config() noexcept;
  /// Uniformly random valid config.
  static SubnetConfig random(Rng& rng) noexcept;

  /// True if every field is one of the allowed search-space options.
  bool valid() const noexcept;

  /// Stable 64-bit hash (strategy-cache key component).
  std::uint64_t hash() const noexcept;

  std::string to_string() const;
};

}  // namespace murmur::supernet
