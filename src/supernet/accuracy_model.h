// Calibrated analytic accuracy model for supernet submodels.
//
// Substitution (DESIGN.md §2): the paper trains the supernet on ImageNet
// and fits an accuracy predictor for use during RL training. We cannot
// train on ImageNet here, so ground-truth accuracy is this calibrated
// closed-form model: top-1 accuracy at the max config matches the paper's
// plotted ceiling (~78%), the min config lands near the plotted floor
// (~72%), and each search-space axis contributes a monotone penalty with a
// mild superlinear interaction. The *predictor* (accuracy_predictor.h) is
// then trained against this model, exactly mirroring the paper's
// predictor-in-the-loop setup.
#pragma once

#include "supernet/subnet_config.h"

namespace murmur::supernet {

class AccuracyModel {
 public:
  /// Top-1 accuracy (percent) of a submodel. Deterministic.
  static double accuracy(const SubnetConfig& config) noexcept;

  /// Accuracy of the largest / smallest submodels (the reachable range).
  static double max_accuracy() noexcept;
  static double min_accuracy() noexcept;

  // Calibration constants (exposed for tests/benches).
  static constexpr double kBaseAccuracy = 78.4;

 private:
  static double total_penalty(const SubnetConfig& config) noexcept;
};

}  // namespace murmur::supernet
