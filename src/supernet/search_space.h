// The partition-ready one-shot NAS search space (paper §4.1, Figure 4).
//
// Six customizable settings per the paper's supernet: spatial partitioning
// (1×1 … 2×2), input feature quantization (32 → 8 bits), image resolution
// (224 → 160), block depth (4 → 2) and kernel size (7 → 3). Width is fixed
// by the architecture (the paper's sixth axis, channel width, enters via
// the elastic expansion — kept fixed at the MobileNetV3 ratios here and
// noted in DESIGN.md).
#pragma once

#include <array>
#include <cstddef>

#include "tensor/quantize.h"
#include "tensor/tile.h"

namespace murmur::supernet {

inline constexpr int kNumStages = 5;
inline constexpr int kMaxBlocksPerStage = 4;
inline constexpr int kMinBlocksPerStage = 2;
inline constexpr int kMaxBlocks = kNumStages * kMaxBlocksPerStage;

inline constexpr std::array<int, 5> kResolutions = {160, 176, 192, 208, 224};
inline constexpr std::array<int, 3> kKernelOptions = {3, 5, 7};
inline constexpr std::array<int, 3> kDepthOptions = {2, 3, 4};
inline constexpr std::array<QuantBits, 3> kQuantOptions = {
    QuantBits::k32, QuantBits::k16, QuantBits::k8};
inline constexpr std::array<PartitionGrid, 4> kGridOptions = {
    PartitionGrid{1, 1}, PartitionGrid{1, 2}, PartitionGrid{2, 1},
    PartitionGrid{2, 2}};

/// Maximum number of spatial partitions any layer can have (grid 2×2).
inline constexpr int kMaxPartitions = 4;

// MobileNetV3-Large-flavoured backbone constants (width multiplier 1.0):
// stage output channels, stage strides (first block of the stage), whether
// the stage uses squeeze-excite, and the MBConv expansion ratio.
inline constexpr std::array<int, kNumStages> kStageChannels = {24, 40, 80,
                                                               112, 160};
inline constexpr std::array<int, kNumStages> kStageStrides = {2, 2, 2, 1, 2};
inline constexpr std::array<bool, kNumStages> kStageUsesSE = {false, true,
                                                              false, true,
                                                              true};
inline constexpr int kExpansion = 4;
inline constexpr int kStemChannels = 16;
inline constexpr int kHeadChannels = 960;

/// Index helpers over the option tables.
int kernel_index(int kernel) noexcept;
int depth_index(int depth) noexcept;
int resolution_index(int resolution) noexcept;
int quant_index(QuantBits q) noexcept;
int grid_index(PartitionGrid g) noexcept;

/// Total number of distinct submodels in the search space (for reporting;
/// the paper quotes 10^19 for once-for-all — ours is smaller but still far
/// beyond enumeration once placement is included).
double search_space_size() noexcept;

}  // namespace murmur::supernet
