#include "supernet/supernet.h"

#include <cassert>

namespace murmur::supernet {

namespace {
constexpr int kSEReduction = 4;
}

MBConvBlock::MBConvBlock(int in_ch, int out_ch, int stride, bool use_se,
                         Rng& rng)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      stride_(stride),
      expand_(in_ch, in_ch * kExpansion, 1, 1, 1, rng),
      dw_(in_ch * kExpansion, in_ch * kExpansion, kKernelOptions.back(),
          stride, in_ch * kExpansion, rng),
      project_(in_ch * kExpansion, out_ch, 1, 1, 1, rng),
      bn1_(in_ch * kExpansion),
      bn2_(in_ch * kExpansion),
      bn3_(out_ch),
      residual_(stride == 1 && in_ch == out_ch) {
  if (use_se) se_.emplace(in_ch * kExpansion, kSEReduction, rng);
}

bool MBConvBlock::can_partition(const Tensor& x,
                                PartitionGrid grid) const noexcept {
  if (grid.tiles() <= 1) return false;
  // Every tile offset and size must be a multiple of the stride so tile
  // outputs land on the same lattice as the unpartitioned output.
  const auto extents = tile_extents(x.dim(2), x.dim(3), grid);
  for (const auto& e : extents) {
    if (e.h0 % stride_ || e.w0 % stride_ || e.h % stride_ || e.w % stride_)
      return false;
    if (e.h < stride_ || e.w < stride_) return false;
  }
  return true;
}

Tensor MBConvBlock::forward_tile(const Tensor& tile, const BlockConfig& cfg) {
  assert(dw_.active_kernel() == cfg.kernel && "call prepare() first");
  Tensor x = expand_.forward(tile);
  x = bn1_.forward(x);
  nn::apply_activation(nn::Activation::kHardSwish, x);
  // Depthwise conv with same-padding on the *tile* is exactly FDSP: the
  // interior edges see zeros where a halo exchange would have provided
  // neighbour pixels.
  x = dw_.forward(x);
  x = bn2_.forward(x);
  nn::apply_activation(nn::Activation::kHardSwish, x);
  if (se_) x = se_->forward(x);  // per-tile squeeze (FDSP approximation)
  x = project_.forward(x);
  x = bn3_.forward(x);
  if (residual_) {
    // Residual is positional, so it is exact per tile.
    x.add_(tile);
  }
  return x;
}

Tensor MBConvBlock::forward(const Tensor& x, const BlockConfig& cfg) {
  prepare(cfg);
  if (!can_partition(x, cfg.grid)) return forward_tile(x, cfg);
  const auto in_extents = tile_extents(x.dim(2), x.dim(3), cfg.grid);
  std::vector<Tensor> out_tiles;
  std::vector<TileExtent> out_extents;
  out_tiles.reserve(in_extents.size());
  out_extents.reserve(in_extents.size());
  for (const auto& e : in_extents) {
    Tensor tile = x.crop(e.h0, e.w0, e.h, e.w);
    out_tiles.push_back(forward_tile(tile, cfg));
    out_extents.push_back(TileExtent{e.h0 / stride_, e.w0 / stride_,
                                     e.h / stride_, e.w / stride_});
  }
  return merge_tiles(out_tiles, out_extents, out_ch_, x.dim(2) / stride_,
                     x.dim(3) / stride_);
}

std::size_t MBConvBlock::param_bytes() const noexcept {
  std::size_t b = expand_.param_bytes() + dw_.param_bytes() +
                  project_.param_bytes() + bn1_.param_bytes() +
                  bn2_.param_bytes() + bn3_.param_bytes();
  if (se_) b += se_->param_bytes();
  return b;
}

void MBConvBlock::reload_weights(const MBConvBlock& src) {
  expand_.weights() = src.expand_.weights();
  dw_.weights() = src.dw_.weights();
  project_.weights() = src.project_.weights();
}

Supernet::Supernet(SupernetOptions opts) : opts_(opts), rng_(opts.seed) {
  const int stem_ch = scaled_channels(kStemChannels);
  stem_ = std::make_unique<nn::Conv2D>(3, stem_ch, 3, 2, 1, rng_);
  stem_bn_ = std::make_unique<nn::BatchNorm>(stem_ch);
  int prev_ch = stem_ch;
  for (int stage = 0; stage < kNumStages; ++stage) {
    const int out_ch = scaled_channels(kStageChannels[static_cast<std::size_t>(stage)]);
    for (int pos = 0; pos < kMaxBlocksPerStage; ++pos) {
      const int in_ch = pos == 0 ? prev_ch : out_ch;
      const int stride = pos == 0 ? kStageStrides[static_cast<std::size_t>(stage)] : 1;
      blocks_.push_back(std::make_unique<MBConvBlock>(
          in_ch, out_ch, stride, kStageUsesSE[static_cast<std::size_t>(stage)], rng_));
    }
    prev_ch = out_ch;
  }
  const int head_ch = scaled_channels(kHeadChannels);
  head_conv_ = std::make_unique<nn::Conv2D>(prev_ch, head_ch, 1, 1, 1, rng_);
  head_bn_ = std::make_unique<nn::BatchNorm>(head_ch);
  pool_ = std::make_unique<nn::GlobalAvgPool>();
  classifier_ = std::make_unique<nn::Linear>(head_ch, opts_.classes, rng_);
}

int Supernet::scaled_channels(int ch) const noexcept {
  if (opts_.width_mult >= 1.0) return ch;
  const int scaled = static_cast<int>(ch * opts_.width_mult);
  return std::max(4, (scaled / 4) * 4);
}

Tensor Supernet::forward_stem(const Tensor& image) {
  Tensor x = stem_->forward(image);
  x = stem_bn_->forward(x);
  nn::apply_activation(nn::Activation::kHardSwish, x);
  return x;
}

Tensor Supernet::forward_block(int block, const Tensor& x) {
  assert(block >= 0 && block < kMaxBlocks);
  return blocks_[static_cast<std::size_t>(block)]->forward(
      x, active_.blocks[static_cast<std::size_t>(block)]);
}

void Supernet::prepare_block(int block) {
  assert(block >= 0 && block < kMaxBlocks);
  blocks_[static_cast<std::size_t>(block)]->prepare(
      active_.blocks[static_cast<std::size_t>(block)]);
}

Tensor Supernet::forward_block_tile(int block, const Tensor& tile) {
  assert(block >= 0 && block < kMaxBlocks);
  return blocks_[static_cast<std::size_t>(block)]->forward_tile(
      tile, active_.blocks[static_cast<std::size_t>(block)]);
}

bool Supernet::block_can_partition(int block, const Tensor& x) const noexcept {
  return blocks_[static_cast<std::size_t>(block)]->can_partition(
      x, active_.blocks[static_cast<std::size_t>(block)].grid);
}

Tensor Supernet::forward_head(const Tensor& features) {
  Tensor x = head_conv_->forward(features);
  x = head_bn_->forward(x);
  nn::apply_activation(nn::Activation::kHardSwish, x);
  x = pool_->forward(x);
  return classifier_->forward(x);
}

Tensor Supernet::forward(const Tensor& image) {
  Tensor x = forward_stem(image);
  for (int b = 0; b < kMaxBlocks; ++b) {
    if (!active_.block_active(b)) continue;
    x = forward_block(b, x);
  }
  return forward_head(x);
}

std::size_t Supernet::param_bytes() const noexcept {
  std::size_t b = stem_->param_bytes() + stem_bn_->param_bytes() +
                  head_conv_->param_bytes() + head_bn_->param_bytes() +
                  classifier_->param_bytes();
  for (const auto& blk : blocks_) b += blk->param_bytes();
  return b;
}

void Supernet::simulate_weight_reload(const Supernet& src) {
  stem_->weights() = src.stem_->weights();
  head_conv_->weights() = src.head_conv_->weights();
  classifier_->weights() = src.classifier_->weights();
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    blocks_[i]->reload_weights(*src.blocks_[i]);
}

}  // namespace murmur::supernet
