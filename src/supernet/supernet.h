// Executable partition-ready elastic supernet (MobileNetV3-Large-flavoured).
//
// The full supernet (all weights at maximum kernel/depth) lives in memory;
// activating a submodel is a metadata-only operation — the key property
// behind the paper's millisecond model switching (§5.1, Fig 19). Blocks can
// be executed whole or tile-by-tile (FDSP spatial partitioning) so the
// distributed executor can ship tiles to different simulated devices.
//
// Substitution note (DESIGN.md §2): weights are randomly initialised, not
// ImageNet-trained; classification *accuracy* comes from the calibrated
// accuracy model. Everything structural — shapes, FLOPs, partitioning,
// quantization, reconfiguration — is real and exercised.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/se_block.h"
#include "supernet/cost_model.h"
#include "supernet/subnet_config.h"

namespace murmur::supernet {

struct SupernetOptions {
  /// Channel width multiplier for the executable instance. 1.0 is the
  /// architecture the cost model describes; tests use smaller widths so the
  /// forward pass stays fast on a laptop.
  double width_mult = 1.0;
  int classes = 1000;
  std::uint64_t seed = 42;
};

/// One inverted-residual (MBConv) block with elastic kernel and
/// block-granular FDSP spatial partitioning.
class MBConvBlock {
 public:
  MBConvBlock(int in_ch, int out_ch, int stride, bool use_se, Rng& rng);

  /// Full-map forward. If cfg.grid has >1 tile and the geometry permits an
  /// aligned split, the map is split, each tile run independently (FDSP)
  /// and the results merged — numerically identical to what the
  /// distributed executor produces across devices.
  Tensor forward(const Tensor& x, const BlockConfig& cfg);

  /// Select the elastic kernel for this block. Must be called before
  /// forward_tile when tiles run on concurrent threads (forward() does it
  /// internally); forward_tile itself never mutates shared state.
  /// Bind the elastic kernel crop AND the execute precision for the
  /// block's quantization axis: k8 runs the three convolutions through the
  /// int8 kernels (BN, activations, SE and the residual stay fp32).
  void prepare(const BlockConfig& cfg) {
    dw_.set_active_kernel(cfg.kernel);
    expand_.set_compute_precision(cfg.quant);
    dw_.set_compute_precision(cfg.quant);
    project_.set_compute_precision(cfg.quant);
  }

  /// Forward of a single tile (what one remote device executes). Requires
  /// a prior prepare() with the same config. Thread-safe across tiles.
  Tensor forward_tile(const Tensor& tile, const BlockConfig& cfg);

  /// True if the tile grid aligns with the block's stride for this input.
  bool can_partition(const Tensor& x, PartitionGrid grid) const noexcept;

  int in_channels() const noexcept { return in_ch_; }
  int out_channels() const noexcept { return out_ch_; }
  int stride() const noexcept { return stride_; }
  std::size_t param_bytes() const noexcept;
  /// Touch (copy) every weight, simulating a from-disk model reload.
  void reload_weights(const MBConvBlock& src);

 private:
  int in_ch_, out_ch_, stride_;
  nn::Conv2D expand_, dw_, project_;
  nn::BatchNorm bn1_, bn2_, bn3_;
  std::optional<nn::SEBlock> se_;
  bool residual_;
};

class Supernet {
 public:
  explicit Supernet(SupernetOptions opts = {});

  /// Activate a submodel: O(1) metadata update, no weight movement.
  void activate(const SubnetConfig& config) noexcept { active_ = config; }
  const SubnetConfig& active() const noexcept { return active_; }

  /// End-to-end forward of the active submodel on an NCHW image whose
  /// spatial size must equal active().resolution (scaled by width options).
  Tensor forward(const Tensor& image);

  // --- piecewise API for the distributed executor --------------------
  Tensor forward_stem(const Tensor& image);
  Tensor forward_block(int block, const Tensor& x);
  /// Select the active kernel of `block` (call once before concurrent
  /// forward_block_tile calls for that block).
  void prepare_block(int block);
  Tensor forward_block_tile(int block, const Tensor& tile);
  bool block_can_partition(int block, const Tensor& x) const noexcept;
  /// Logits from the final feature map.
  Tensor forward_head(const Tensor& features);

  int num_blocks() const noexcept { return kMaxBlocks; }
  int classes() const noexcept { return opts_.classes; }
  const SupernetOptions& options() const noexcept { return opts_; }
  std::size_t param_bytes() const noexcept;

  /// Simulate loading a different model of the same size into memory
  /// (deep-copies every weight tensor) — the slow path Fig 19 compares
  /// against.
  void simulate_weight_reload(const Supernet& src);

  /// Scaled channel count for this instance's width multiplier.
  int scaled_channels(int ch) const noexcept;

 private:
  SupernetOptions opts_;
  Rng rng_;
  std::unique_ptr<nn::Conv2D> stem_;
  std::unique_ptr<nn::BatchNorm> stem_bn_;
  std::vector<std::unique_ptr<MBConvBlock>> blocks_;
  std::unique_ptr<nn::Conv2D> head_conv_;
  std::unique_ptr<nn::BatchNorm> head_bn_;
  std::unique_ptr<nn::GlobalAvgPool> pool_;
  std::unique_ptr<nn::Linear> classifier_;
  SubnetConfig active_ = SubnetConfig::max_config();
};

}  // namespace murmur::supernet
