#include "supernet/accuracy_model.h"

#include <algorithm>
#include <array>

namespace murmur::supernet {

namespace {

// Penalty tables, indexed by option index in the search-space tables.
constexpr std::array<double, 5> kResolutionPenalty = {2.1, 1.4, 0.8, 0.4, 0.0};
// Removing a block costs more in later stages (higher-level features).
// Every value exceeds the largest possible per-block penalty (kernel 0.06 +
// quant 0.04 + grid 0.07 = 0.17) so that accuracy stays monotone in depth:
// dropping a block always hurts even though it also removes that block's
// kernel/quant/grid penalties.
constexpr std::array<double, kNumStages> kDepthPenaltyPerBlock = {
    0.20, 0.25, 0.30, 0.35, 0.40};
// kernel index {3, 5, 7}.
constexpr std::array<double, 3> kKernelPenalty = {0.06, 0.02, 0.0};
// quant index {32, 16, 8}.
constexpr std::array<double, 3> kQuantPenalty = {0.0, 0.01, 0.04};
// grid index {1x1, 1x2, 2x1, 2x2}: FDSP zero padding perturbs activations.
// Calibrated to ADCNN's finetuned FDSP (<~1% whole-network drop): a fully
// 2x2-partitioned 20-block submodel loses 0.5 points.
constexpr std::array<double, 4> kGridPenalty = {0.0, 0.01, 0.01, 0.025};

}  // namespace

double AccuracyModel::total_penalty(const SubnetConfig& config) noexcept {
  double p = kResolutionPenalty[static_cast<std::size_t>(
      resolution_index(config.resolution))];
  for (int stage = 0; stage < kNumStages; ++stage) {
    const int missing =
        kMaxBlocksPerStage - config.stage_depth[static_cast<std::size_t>(stage)];
    p += missing * kDepthPenaltyPerBlock[static_cast<std::size_t>(stage)];
  }
  for (int i = 0; i < kMaxBlocks; ++i) {
    if (!config.block_active(i)) continue;
    const auto& b = config.blocks[static_cast<std::size_t>(i)];
    p += kKernelPenalty[static_cast<std::size_t>(kernel_index(b.kernel))];
    p += kQuantPenalty[static_cast<std::size_t>(quant_index(b.quant))];
    p += kGridPenalty[static_cast<std::size_t>(grid_index(b.grid))];
  }
  return p;
}

double AccuracyModel::accuracy(const SubnetConfig& config) noexcept {
  const double p = total_penalty(config);
  // Mild superlinear interaction: stacking many compressions hurts slightly
  // more than their sum (matches OFA-style measurements qualitatively).
  const double acc = kBaseAccuracy - p * (1.0 + 0.05 * p / 6.0);
  return std::clamp(acc, 0.0, 100.0);
}

double AccuracyModel::max_accuracy() noexcept {
  return accuracy(SubnetConfig::max_config());
}

double AccuracyModel::min_accuracy() noexcept {
  return accuracy(SubnetConfig::min_config());
}

}  // namespace murmur::supernet
