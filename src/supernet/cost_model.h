// Analytic per-block cost model of the supernet architecture.
//
// The RL environment and the latency evaluator need compute (FLOPs) and
// transfer (activation bytes) per decision layer *without* running tensors.
// This model reproduces the arithmetic of the width-1.0 architecture in
// closed form; the executable supernet (supernet.h) is checked against it
// in tests at a reduced width.
#pragma once

#include <vector>

#include "supernet/subnet_config.h"

namespace murmur::supernet {

/// Static geometry of one executable unit ("decision layer"): the stem, the
/// 20 MBConv block slots and the head. Geometry depends only on the
/// architecture constants plus the config's resolution/depth.
struct BlockGeometry {
  int in_channels = 0;
  int out_channels = 0;
  int stride = 1;
  int in_spatial = 0;   // input H (== W)
  int out_spatial = 0;  // output H (== W)
  bool uses_se = false;
};

class CostModel {
 public:
  /// Geometry of MBConv block `block` (0..kMaxBlocks-1) under `config`.
  /// Inactive blocks still get geometry (as if active) so the policy can be
  /// evaluated slot-by-slot; their cost contribution is zero.
  static BlockGeometry block_geometry(const SubnetConfig& config, int block) noexcept;

  /// FLOPs of one MBConv block under the config (0 if inactive).
  static double block_flops(const SubnetConfig& config, int block) noexcept;

  /// FLOPs of the same block when executed as one tile of its partition
  /// grid, including the FDSP zero-padding overhead on the depthwise stage.
  static double block_tile_flops(const SubnetConfig& config, int block) noexcept;

  /// Relative per-MAC wall cost of executing at the given precision,
  /// normalized to fp32 == 1. Only k8 has a real compute path (the VNNI
  /// int8 kernels); its ratio is calibrated against the fp32 packed path
  /// on the bench conv shapes (BENCH_kernels.json `quantized` block).
  /// Other widths quantize the wire only and execute fp32.
  static double mac_cost_factor(QuantBits bits) noexcept;

  /// `block_flops` / `block_tile_flops` with the expand/depthwise/project
  /// stages scaled by the block's per-MAC cost factor — "effective fp32
  /// FLOPs", so device Throughput (calibrated in fp32 GFLOP/s) prices an
  /// int8 block at its measured rate. The SE stage always runs fp32 and
  /// is left unscaled. Equal to the nominal counts for fp32 blocks.
  static double block_effective_flops(const SubnetConfig& config,
                                      int block) noexcept;
  static double block_tile_effective_flops(const SubnetConfig& config,
                                           int block) noexcept;

  /// Elements (floats before quantization) in the block's output map.
  static std::size_t block_out_elements(const SubnetConfig& config, int block) noexcept;

  /// Wire bytes of the block's output at its configured quantization.
  static std::size_t block_out_wire_bytes(const SubnetConfig& config, int block) noexcept;

  /// Wire bytes of one tile of the block's output (grid-partitioned).
  static std::size_t block_tile_out_wire_bytes(const SubnetConfig& config,
                                               int block) noexcept;

  static double stem_flops(const SubnetConfig& config) noexcept;
  static std::size_t stem_out_elements(const SubnetConfig& config) noexcept;
  /// Head = 1x1 conv + global pool + classifier.
  static double head_flops(const SubnetConfig& config, int classes = 1000) noexcept;

  /// Whole-submodel totals.
  static double total_flops(const SubnetConfig& config, int classes = 1000) noexcept;
  static std::size_t total_activation_bytes(const SubnetConfig& config) noexcept;

  /// Input image wire bytes at the config's resolution (3 channels, fp32 --
  /// the paper quantizes *intermediate* features, not the camera input).
  static std::size_t input_bytes(const SubnetConfig& config) noexcept;

  /// Supernet parameter bytes (all weights at max settings, fp32) — the
  /// in-memory footprint the runtime keeps resident for fast switching.
  static std::size_t supernet_param_bytes(int classes = 1000) noexcept;
};

}  // namespace murmur::supernet
