// Fixed DNN model profiles for the baseline systems.
//
// Neurosurgeon and ADCNN partition a *fixed* published model; what they
// need from the model is its per-layer compute/activation profile and its
// ImageNet top-1 accuracy. We ship profiles for the five models the paper's
// figures use, with published top-1 accuracies and FLOP/parameter totals
// matching the literature (per-layer splits are stage-granular, which is
// the granularity Neurosurgeon split points actually matter at).
#pragma once

#include <string>
#include <vector>

namespace murmur::supernet {

struct ProfileLayer {
  std::string name;
  double flops = 0.0;           // forward FLOPs at 224x224 input
  std::size_t out_elements = 0; // activation elements leaving this layer
  std::size_t param_bytes = 0;  // fp32 weight bytes
  /// True if the layer is a spatial (conv/pool) layer ADCNN can partition.
  bool spatial = true;
};

struct FixedModelProfile {
  std::string name;
  double top1_accuracy = 0.0;  // percent
  std::vector<ProfileLayer> layers;

  double total_flops() const noexcept;
  std::size_t total_param_bytes() const noexcept;
  /// Activation bytes leaving layer i (fp32; baselines do not quantize).
  std::size_t out_bytes(std::size_t i) const noexcept;
  /// Bytes of a 3x224x224 fp32 input image.
  static std::size_t input_bytes() noexcept;
};

/// The five fixed models used across Figures 13-16.
const FixedModelProfile& mobilenet_v3_large();
const FixedModelProfile& resnet50();
const FixedModelProfile& inception_v3();
const FixedModelProfile& densenet161();
const FixedModelProfile& resnext101_32x8d();

/// All zoo models, largest-accuracy last.
std::vector<const FixedModelProfile*> model_zoo();
/// Lookup by name; nullptr if unknown.
const FixedModelProfile* find_model(const std::string& name);

}  // namespace murmur::supernet
