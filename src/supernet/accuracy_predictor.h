// MLP accuracy predictor, trained against the analytic accuracy model.
//
// The paper uses "an accuracy predictor ... for accuracy prediction during
// RL policy training" (§6.1.1). We reproduce that component: a small MLP
// over the one-hot/ordinal encoding of a SubnetConfig, trained with Adam on
// sampled (config, accuracy) pairs. The RL stack can be pointed at either
// the predictor (paper-faithful) or the analytic model directly.
#pragma once

#include <vector>

#include "common/rng.h"
#include "supernet/subnet_config.h"

namespace murmur::supernet {

/// Fixed-length feature encoding of a config (all values scaled to ~[0,1]).
std::vector<double> encode_config(const SubnetConfig& config);
std::size_t config_feature_dim() noexcept;

class AccuracyPredictor {
 public:
  struct TrainOptions {
    int samples = 4000;
    int epochs = 60;
    int batch = 64;
    double lr = 1e-3;
    std::uint64_t seed = 7;
  };

  explicit AccuracyPredictor(std::uint64_t seed = 7);

  /// Fit against the analytic accuracy model on randomly sampled configs.
  /// Returns final RMSE (accuracy percentage points) on a held-out split.
  double train(const TrainOptions& opts);
  double train() { return train(TrainOptions{}); }

  /// Predicted top-1 accuracy (percent).
  double predict(const SubnetConfig& config) const;

  bool trained() const noexcept { return trained_; }

 private:
  struct DenseLayer {
    std::vector<double> w;  // row-major [out][in]
    std::vector<double> b;
    int in = 0, out = 0;
  };
  std::vector<double> forward(std::span<const double> x,
                              std::vector<std::vector<double>>* acts) const;

  DenseLayer l1_, l2_, l3_;
  bool trained_ = false;
  mutable Rng rng_;
};

}  // namespace murmur::supernet
