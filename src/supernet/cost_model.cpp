#include "supernet/cost_model.h"

#include <algorithm>
#include <cmath>

namespace murmur::supernet {

namespace {

/// Spatial size at the input of stage `stage` for a given resolution.
int stage_in_spatial(int resolution, int stage) noexcept {
  int s = resolution / 2;  // stem is stride 2
  for (int i = 0; i < stage; ++i) s /= kStageStrides[static_cast<std::size_t>(i)];
  return s;
}

}  // namespace

BlockGeometry CostModel::block_geometry(const SubnetConfig& config,
                                        int block) noexcept {
  const int stage = block / kMaxBlocksPerStage;
  const int pos = block % kMaxBlocksPerStage;
  BlockGeometry g;
  g.uses_se = kStageUsesSE[static_cast<std::size_t>(stage)];
  g.out_channels = kStageChannels[static_cast<std::size_t>(stage)];
  g.in_channels = pos == 0 ? (stage == 0 ? kStemChannels
                                         : kStageChannels[static_cast<std::size_t>(stage - 1)])
                           : g.out_channels;
  g.stride = pos == 0 ? kStageStrides[static_cast<std::size_t>(stage)] : 1;
  const int s_in_stage = stage_in_spatial(config.resolution, stage);
  g.in_spatial = pos == 0
                     ? s_in_stage
                     : s_in_stage / kStageStrides[static_cast<std::size_t>(stage)];
  g.out_spatial = g.in_spatial / g.stride;
  return g;
}

namespace {

/// Shared arithmetic of block_flops / block_tile_flops, with the conv
/// stages (expand, depthwise, project) scaled by `conv_factor`. The SE
/// stage always executes fp32 (gemv path), so it is never scaled.
double block_flops_scaled(const SubnetConfig& config, int block,
                          double conv_factor, bool tiled) noexcept {
  if (!config.block_active(block)) return 0.0;
  const BlockGeometry g = CostModel::block_geometry(config, block);
  const auto& b = config.blocks[static_cast<std::size_t>(block)];
  const int tiles = tiled ? b.grid.tiles() : 1;
  const double exp_ch = static_cast<double>(g.in_channels) * kExpansion;
  const double s_in2 = static_cast<double>(g.in_spatial) * g.in_spatial;
  const double s_out2 = static_cast<double>(g.out_spatial) * g.out_spatial;
  // The 1x1 expand/project convolutions (and SE) split exactly across
  // tiles; only the depthwise stage sees FDSP zero padding, so only it
  // pays the padded-tile overhead.
  double overhead = 1.0;
  if (tiles > 1) {
    const int halo = b.kernel / 2;
    const double th = static_cast<double>(g.out_spatial) / b.grid.rows;
    const double tw = static_cast<double>(g.out_spatial) / b.grid.cols;
    overhead = ((th + 2 * halo) * (tw + 2 * halo)) / std::max(1.0, th * tw);
  }
  // Expand (1x1), depthwise (k x k, stride), project (1x1).
  double f = 2.0 * g.in_channels * exp_ch * s_in2 / tiles;  // expand
  f += 2.0 * b.kernel * b.kernel * exp_ch * s_out2 / tiles * overhead;  // dw
  f += 2.0 * exp_ch * g.out_channels * s_out2 / tiles;  // project
  f *= conv_factor;
  if (g.uses_se)
    f += (2.0 * exp_ch * (exp_ch / 4.0) * 2.0 + 2.0 * exp_ch * s_out2) / tiles;
  return f;
}

}  // namespace

double CostModel::block_flops(const SubnetConfig& config, int block) noexcept {
  return block_flops_scaled(config, block, 1.0, /*tiled=*/false);
}

double CostModel::block_tile_flops(const SubnetConfig& config,
                                   int block) noexcept {
  return block_flops_scaled(config, block, 1.0, /*tiled=*/true);
}

double CostModel::mac_cost_factor(QuantBits bits) noexcept {
  // Calibrated from bench/bench_micro_kernels.cpp on the reference build
  // host (AVX512-VNNI): per-shape int8/fp32 wall-time ratios over the
  // BENCH_kernels.json conv shapes are 0.37-0.41 (pointwise 16/40/80ch)
  // and 0.18-0.43 (depthwise k=3/5/7), geometric mean 0.32. Rounded up
  // toward the worst shape so the planner never over-promises.
  constexpr double kInt8MacRatio = 0.42;
  return bits == QuantBits::k8 ? kInt8MacRatio : 1.0;
}

double CostModel::block_effective_flops(const SubnetConfig& config,
                                        int block) noexcept {
  if (!config.block_active(block)) return 0.0;
  const auto& b = config.blocks[static_cast<std::size_t>(block)];
  return block_flops_scaled(config, block, mac_cost_factor(b.quant),
                            /*tiled=*/false);
}

double CostModel::block_tile_effective_flops(const SubnetConfig& config,
                                             int block) noexcept {
  if (!config.block_active(block)) return 0.0;
  const auto& b = config.blocks[static_cast<std::size_t>(block)];
  return block_flops_scaled(config, block, mac_cost_factor(b.quant),
                            /*tiled=*/true);
}

std::size_t CostModel::block_out_elements(const SubnetConfig& config,
                                          int block) noexcept {
  if (!config.block_active(block)) return 0;
  const BlockGeometry g = block_geometry(config, block);
  return static_cast<std::size_t>(g.out_channels) * g.out_spatial *
         g.out_spatial;
}

std::size_t CostModel::block_out_wire_bytes(const SubnetConfig& config,
                                            int block) noexcept {
  if (!config.block_active(block)) return 0;
  return quantized_wire_bytes(block_out_elements(config, block),
                              config.blocks[static_cast<std::size_t>(block)].quant);
}

std::size_t CostModel::block_tile_out_wire_bytes(const SubnetConfig& config,
                                                 int block) noexcept {
  if (!config.block_active(block)) return 0;
  const auto& b = config.blocks[static_cast<std::size_t>(block)];
  const std::size_t elems =
      block_out_elements(config, block) /
      static_cast<std::size_t>(std::max(1, b.grid.tiles()));
  return quantized_wire_bytes(elems, b.quant);
}

double CostModel::stem_flops(const SubnetConfig& config) noexcept {
  const double s_out = config.resolution / 2.0;
  return 2.0 * 3.0 * kStemChannels * 9.0 * s_out * s_out;
}

std::size_t CostModel::stem_out_elements(const SubnetConfig& config) noexcept {
  const int s = config.resolution / 2;
  return static_cast<std::size_t>(kStemChannels) * s * s;
}

double CostModel::head_flops(const SubnetConfig& config, int classes) noexcept {
  int s = config.resolution / 2;
  for (int st : kStageStrides) s /= st;
  const double last_ch = kStageChannels.back();
  double f = 2.0 * last_ch * kHeadChannels * s * s;       // 1x1 conv
  f += static_cast<double>(kHeadChannels) * s * s;        // global pool
  f += 2.0 * kHeadChannels * static_cast<double>(classes);  // classifier
  return f;
}

double CostModel::total_flops(const SubnetConfig& config, int classes) noexcept {
  double f = stem_flops(config) + head_flops(config, classes);
  for (int i = 0; i < kMaxBlocks; ++i) f += block_flops(config, i);
  return f;
}

std::size_t CostModel::total_activation_bytes(const SubnetConfig& config) noexcept {
  std::size_t b = stem_out_elements(config) * 4;
  for (int i = 0; i < kMaxBlocks; ++i) b += block_out_wire_bytes(config, i);
  return b;
}

std::size_t CostModel::input_bytes(const SubnetConfig& config) noexcept {
  return static_cast<std::size_t>(3) * config.resolution * config.resolution * 4;
}

std::size_t CostModel::supernet_param_bytes(int classes) noexcept {
  const SubnetConfig max = SubnetConfig::max_config();
  double params = 3.0 * kStemChannels * 9.0;  // stem weights
  for (int i = 0; i < kMaxBlocks; ++i) {
    const BlockGeometry g = block_geometry(max, i);
    const double exp_ch = static_cast<double>(g.in_channels) * kExpansion;
    params += g.in_channels * exp_ch;              // expand 1x1
    params += exp_ch * 7.0 * 7.0;                  // depthwise at max kernel
    params += exp_ch * g.out_channels;             // project 1x1
    if (g.uses_se) params += 2.0 * exp_ch * (exp_ch / 4.0);
  }
  int s = kResolutions.back() / 2;
  for (int st : kStageStrides) s /= st;
  params += static_cast<double>(kStageChannels.back()) * kHeadChannels;
  params += static_cast<double>(kHeadChannels) * classes;
  return static_cast<std::size_t>(params) * sizeof(float);
}

}  // namespace murmur::supernet
