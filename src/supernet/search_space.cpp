#include "supernet/search_space.h"

#include <cmath>

namespace murmur::supernet {

namespace {
template <typename T, std::size_t N>
int index_of(const std::array<T, N>& table, const T& v) noexcept {
  for (std::size_t i = 0; i < N; ++i)
    if (table[i] == v) return static_cast<int>(i);
  return -1;
}
}  // namespace

int kernel_index(int kernel) noexcept { return index_of(kKernelOptions, kernel); }
int depth_index(int depth) noexcept { return index_of(kDepthOptions, depth); }
int resolution_index(int resolution) noexcept {
  return index_of(kResolutions, resolution);
}
int quant_index(QuantBits q) noexcept { return index_of(kQuantOptions, q); }
int grid_index(PartitionGrid g) noexcept { return index_of(kGridOptions, g); }

double search_space_size() noexcept {
  // resolution * (depth choices per stage) * per-block (kernel*quant*grid).
  const double per_block = static_cast<double>(kKernelOptions.size()) *
                           kQuantOptions.size() * kGridOptions.size();
  return static_cast<double>(kResolutions.size()) *
         std::pow(static_cast<double>(kDepthOptions.size()), kNumStages) *
         std::pow(per_block, kMaxBlocks);
}

}  // namespace murmur::supernet
