#include "supernet/accuracy_predictor.h"

#include <algorithm>
#include <cmath>

#include "supernet/accuracy_model.h"

namespace murmur::supernet {

namespace {
constexpr int kHidden = 64;

double relu(double x) noexcept { return x > 0 ? x : 0; }
}  // namespace

std::size_t config_feature_dim() noexcept {
  // resolution (1) + per-stage depth (5) + per-block kernel/quant/grid (3 each).
  return 1 + kNumStages + static_cast<std::size_t>(kMaxBlocks) * 3;
}

std::vector<double> encode_config(const SubnetConfig& config) {
  std::vector<double> f;
  f.reserve(config_feature_dim());
  f.push_back(resolution_index(config.resolution) /
              static_cast<double>(kResolutions.size() - 1));
  for (int d : config.stage_depth)
    f.push_back(depth_index(d) / static_cast<double>(kDepthOptions.size() - 1));
  for (int i = 0; i < kMaxBlocks; ++i) {
    const auto& b = config.blocks[static_cast<std::size_t>(i)];
    const double active = config.block_active(i) ? 1.0 : 0.0;
    f.push_back(active * kernel_index(b.kernel) /
                static_cast<double>(kKernelOptions.size() - 1));
    f.push_back(active * quant_index(b.quant) /
                static_cast<double>(kQuantOptions.size() - 1));
    f.push_back(active * grid_index(b.grid) /
                static_cast<double>(kGridOptions.size() - 1));
  }
  return f;
}

AccuracyPredictor::AccuracyPredictor(std::uint64_t seed) : rng_(seed) {
  auto init = [this](DenseLayer& l, int in, int out) {
    l.in = in;
    l.out = out;
    l.w.resize(static_cast<std::size_t>(in) * out);
    l.b.assign(static_cast<std::size_t>(out), 0.0);
    const double s = std::sqrt(2.0 / in);
    for (auto& w : l.w) w = rng_.normal(0.0, s);
  };
  const int d = static_cast<int>(config_feature_dim());
  init(l1_, d, kHidden);
  init(l2_, kHidden, kHidden);
  init(l3_, kHidden, 1);
}

std::vector<double> AccuracyPredictor::forward(
    std::span<const double> x, std::vector<std::vector<double>>* acts) const {
  auto dense = [](const DenseLayer& l, std::span<const double> in,
                  bool activation) {
    std::vector<double> out(static_cast<std::size_t>(l.out));
    for (int o = 0; o < l.out; ++o) {
      double s = l.b[static_cast<std::size_t>(o)];
      const double* wrow = &l.w[static_cast<std::size_t>(o) * l.in];
      for (int i = 0; i < l.in; ++i) s += wrow[i] * in[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(o)] = activation ? relu(s) : s;
    }
    return out;
  };
  auto h1 = dense(l1_, x, true);
  auto h2 = dense(l2_, h1, true);
  auto y = dense(l3_, h2, false);
  if (acts) {
    acts->clear();
    acts->push_back(std::vector<double>(x.begin(), x.end()));
    acts->push_back(h1);
    acts->push_back(h2);
  }
  return y;
}

double AccuracyPredictor::train(const TrainOptions& opts) {
  Rng rng(opts.seed);
  // Sample configs and targets (centered around the model's mean so the
  // output head starts near the right scale).
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  xs.reserve(static_cast<std::size_t>(opts.samples));
  auto add = [&](const SubnetConfig& c) {
    xs.push_back(encode_config(c));
    ys.push_back(AccuracyModel::accuracy(c));
  };
  for (int i = 0; i < opts.samples; ++i) {
    // Anchor the corners of the space (1% each) so the predictor does not
    // extrapolate at the max/min submodels the runtime cares most about.
    if (i % 100 == 0)
      add(SubnetConfig::max_config());
    else if (i % 100 == 1)
      add(SubnetConfig::min_config());
    else
      add(SubnetConfig::random(rng));
  }
  double mean_y = 0;
  for (double y : ys) mean_y += y;
  mean_y /= static_cast<double>(ys.size());
  l3_.b[0] = mean_y;

  const std::size_t holdout = static_cast<std::size_t>(opts.samples) / 10;
  const std::size_t train_n = xs.size() - holdout;

  // Adam state.
  struct Adam {
    std::vector<double> m, v;
    void init(std::size_t n) { m.assign(n, 0); v.assign(n, 0); }
  };
  Adam a1w, a1b, a2w, a2b, a3w, a3b;
  a1w.init(l1_.w.size()); a1b.init(l1_.b.size());
  a2w.init(l2_.w.size()); a2b.init(l2_.b.size());
  a3w.init(l3_.w.size()); a3b.init(l3_.b.size());
  long t = 0;
  auto adam_step = [&](std::vector<double>& p, std::vector<double>& g,
                       Adam& st) {
    constexpr double b1 = 0.9, b2 = 0.999, eps = 1e-8;
    const double bc1 = 1.0 - std::pow(b1, static_cast<double>(t));
    const double bc2 = 1.0 - std::pow(b2, static_cast<double>(t));
    for (std::size_t i = 0; i < p.size(); ++i) {
      st.m[i] = b1 * st.m[i] + (1 - b1) * g[i];
      st.v[i] = b2 * st.v[i] + (1 - b2) * g[i] * g[i];
      p[i] -= opts.lr * (st.m[i] / bc1) / (std::sqrt(st.v[i] / bc2) + eps);
      g[i] = 0;
    }
  };

  std::vector<double> g1w(l1_.w.size()), g1b(l1_.b.size());
  std::vector<double> g2w(l2_.w.size()), g2b(l2_.b.size());
  std::vector<double> g3w(l3_.w.size()), g3b(l3_.b.size());
  std::vector<std::size_t> order(train_n);
  for (std::size_t i = 0; i < train_n; ++i) order[i] = i;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < train_n;
         start += static_cast<std::size_t>(opts.batch)) {
      const std::size_t end =
          std::min(train_n, start + static_cast<std::size_t>(opts.batch));
      for (std::size_t bi = start; bi < end; ++bi) {
        const auto& x = xs[order[bi]];
        std::vector<std::vector<double>> acts;
        const double pred = forward(x, &acts)[0];
        const double err = pred - ys[order[bi]];
        const double scale = 2.0 * err / static_cast<double>(end - start);
        // Backprop through l3 -> l2 -> l1.
        std::vector<double> d2(static_cast<std::size_t>(kHidden));
        for (int i = 0; i < kHidden; ++i) {
          g3w[static_cast<std::size_t>(i)] += scale * acts[2][static_cast<std::size_t>(i)];
          d2[static_cast<std::size_t>(i)] = scale * l3_.w[static_cast<std::size_t>(i)];
        }
        g3b[0] += scale;
        std::vector<double> d1(static_cast<std::size_t>(kHidden), 0.0);
        for (int o = 0; o < kHidden; ++o) {
          if (acts[2][static_cast<std::size_t>(o)] <= 0) continue;  // relu grad
          const double go = d2[static_cast<std::size_t>(o)];
          double* wrow = &l2_.w[static_cast<std::size_t>(o) * kHidden];
          double* grow = &g2w[static_cast<std::size_t>(o) * kHidden];
          for (int i = 0; i < kHidden; ++i) {
            grow[i] += go * acts[1][static_cast<std::size_t>(i)];
            d1[static_cast<std::size_t>(i)] += go * wrow[i];
          }
          g2b[static_cast<std::size_t>(o)] += go;
        }
        const int d = l1_.in;
        for (int o = 0; o < kHidden; ++o) {
          if (acts[1][static_cast<std::size_t>(o)] <= 0) continue;
          const double go = d1[static_cast<std::size_t>(o)];
          double* grow = &g1w[static_cast<std::size_t>(o) * d];
          for (int i = 0; i < d; ++i)
            grow[i] += go * acts[0][static_cast<std::size_t>(i)];
          g1b[static_cast<std::size_t>(o)] += go;
        }
      }
      ++t;
      adam_step(l1_.w, g1w, a1w);
      adam_step(l1_.b, g1b, a1b);
      adam_step(l2_.w, g2w, a2w);
      adam_step(l2_.b, g2b, a2b);
      adam_step(l3_.w, g3w, a3w);
      adam_step(l3_.b, g3b, a3b);
    }
  }
  trained_ = true;
  // Held-out RMSE.
  double se = 0.0;
  for (std::size_t i = train_n; i < xs.size(); ++i) {
    const double pred = forward(xs[i], nullptr)[0];
    se += (pred - ys[i]) * (pred - ys[i]);
  }
  return holdout ? std::sqrt(se / static_cast<double>(holdout)) : 0.0;
}

double AccuracyPredictor::predict(const SubnetConfig& config) const {
  const auto x = encode_config(config);
  return forward(x, nullptr)[0];
}

}  // namespace murmur::supernet
