#include "supernet/model_zoo.h"

namespace murmur::supernet {

namespace {

constexpr double kG = 1e9;
constexpr std::size_t kMB = 1024ull * 1024ull;

/// Helper: spatial activation map elements.
constexpr std::size_t fmap(int c, int s) {
  return static_cast<std::size_t>(c) * s * s;
}

FixedModelProfile make_mobilenet_v3() {
  // MobileNetV3-Large 1.0: ~0.44 GFLOPs (2x219M MACs), 5.4M params, 75.2%.
  FixedModelProfile m;
  m.name = "MobileNetV3";
  m.top1_accuracy = 75.2;
  m.layers = {
      {"stem", 0.012 * kG, fmap(16, 112), std::size_t(0.05 * kMB), true},
      {"stage1", 0.050 * kG, fmap(24, 56), std::size_t(0.20 * kMB), true},
      {"stage2", 0.062 * kG, fmap(40, 28), std::size_t(0.60 * kMB), true},
      {"stage3a", 0.055 * kG, fmap(80, 14), std::size_t(1.20 * kMB), true},
      {"stage3b", 0.050 * kG, fmap(80, 14), std::size_t(1.50 * kMB), true},
      {"stage4", 0.090 * kG, fmap(112, 14), std::size_t(3.00 * kMB), true},
      {"stage5", 0.082 * kG, fmap(160, 7), std::size_t(6.00 * kMB), true},
      {"head_conv", 0.038 * kG, fmap(960, 7), std::size_t(4.60 * kMB), true},
      {"pool_fc", 0.004 * kG, 1000, std::size_t(4.45 * kMB), false},
  };
  return m;
}

FixedModelProfile make_resnet50() {
  // ResNet-50: ~8.2 GFLOPs (2x4.1 GMACs), 25.6M params, 76.1%.
  FixedModelProfile m;
  m.name = "Resnet50";
  m.top1_accuracy = 76.1;
  m.layers.push_back({"conv1", 0.240 * kG, fmap(64, 112), std::size_t(0.04 * kMB), true});
  m.layers.push_back({"maxpool", 0.005 * kG, fmap(64, 56), 0, true});
  for (int i = 0; i < 3; ++i)
    m.layers.push_back({"layer1_" + std::to_string(i), 0.470 * kG,
                        fmap(256, 56), std::size_t(0.9 * kMB), true});
  for (int i = 0; i < 4; ++i)
    m.layers.push_back({"layer2_" + std::to_string(i), 0.480 * kG,
                        fmap(512, 28), std::size_t(3.1 * kMB), true});
  for (int i = 0; i < 6; ++i)
    m.layers.push_back({"layer3_" + std::to_string(i), 0.490 * kG,
                        fmap(1024, 14), std::size_t(6.2 * kMB), true});
  for (int i = 0; i < 3; ++i)
    m.layers.push_back({"layer4_" + std::to_string(i), 0.500 * kG,
                        fmap(2048, 7), std::size_t(14.6 * kMB), true});
  m.layers.push_back({"pool_fc", 0.004 * kG, 1000, std::size_t(7.8 * kMB), false});
  return m;
}

FixedModelProfile make_inception_v3() {
  // Inception v3: ~11.4 GFLOPs (2x5.7 GMACs), 23.8M params, 77.3%.
  FixedModelProfile m;
  m.name = "Inception";
  m.top1_accuracy = 77.3;
  m.layers = {
      {"stem", 0.900 * kG, fmap(192, 35), std::size_t(1.2 * kMB), true},
      {"mixed5b", 0.720 * kG, fmap(256, 35), std::size_t(1.0 * kMB), true},
      {"mixed5c", 0.760 * kG, fmap(288, 35), std::size_t(1.1 * kMB), true},
      {"mixed5d", 0.780 * kG, fmap(288, 35), std::size_t(1.1 * kMB), true},
      {"mixed6a", 0.900 * kG, fmap(768, 17), std::size_t(4.3 * kMB), true},
      {"mixed6b", 1.120 * kG, fmap(768, 17), std::size_t(5.1 * kMB), true},
      {"mixed6c", 1.180 * kG, fmap(768, 17), std::size_t(6.0 * kMB), true},
      {"mixed6d", 1.180 * kG, fmap(768, 17), std::size_t(6.0 * kMB), true},
      {"mixed6e", 1.200 * kG, fmap(768, 17), std::size_t(7.3 * kMB), true},
      {"mixed7a", 0.860 * kG, fmap(1280, 8), std::size_t(6.6 * kMB), true},
      {"mixed7b", 0.900 * kG, fmap(2048, 8), std::size_t(18.0 * kMB), true},
      {"mixed7c", 0.890 * kG, fmap(2048, 8), std::size_t(25.0 * kMB), true},
      {"pool_fc", 0.010 * kG, 1000, std::size_t(7.8 * kMB), false},
  };
  return m;
}

FixedModelProfile make_densenet161() {
  // DenseNet-161: ~15.6 GFLOPs (2x7.8 GMACs), 28.7M params, 77.1%.
  FixedModelProfile m;
  m.name = "DenseNet161";
  m.top1_accuracy = 77.1;
  m.layers = {
      {"stem", 0.650 * kG, fmap(96, 56), std::size_t(0.06 * kMB), true},
      {"dense1", 2.100 * kG, fmap(384, 56), std::size_t(2.8 * kMB), true},
      {"trans1", 0.450 * kG, fmap(192, 28), std::size_t(0.3 * kMB), true},
      {"dense2", 3.400 * kG, fmap(768, 28), std::size_t(7.5 * kMB), true},
      {"trans2", 0.350 * kG, fmap(384, 14), std::size_t(1.2 * kMB), true},
      {"dense3", 5.200 * kG, fmap(2112, 14), std::size_t(32.0 * kMB), true},
      {"trans3", 0.300 * kG, fmap(1056, 7), std::size_t(8.9 * kMB), true},
      {"dense4", 3.100 * kG, fmap(2208, 7), std::size_t(48.0 * kMB), true},
      {"pool_fc", 0.005 * kG, 1000, std::size_t(8.4 * kMB), false},
  };
  return m;
}

FixedModelProfile make_resnext101() {
  // ResNeXt-101 32x8d: ~33 GFLOPs (2x16.5 GMACs), 88.8M params, 79.3%.
  FixedModelProfile m;
  m.name = "Resnext101";
  m.top1_accuracy = 79.3;
  m.layers.push_back({"conv1", 0.240 * kG, fmap(64, 112), std::size_t(0.04 * kMB), true});
  m.layers.push_back({"maxpool", 0.005 * kG, fmap(64, 56), 0, true});
  for (int i = 0; i < 3; ++i)
    m.layers.push_back({"layer1_" + std::to_string(i), 1.500 * kG,
                        fmap(256, 56), std::size_t(2.4 * kMB), true});
  for (int i = 0; i < 4; ++i)
    m.layers.push_back({"layer2_" + std::to_string(i), 1.700 * kG,
                        fmap(512, 28), std::size_t(8.5 * kMB), true});
  for (int i = 0; i < 23; ++i)
    m.layers.push_back({"layer3_" + std::to_string(i), 0.760 * kG,
                        fmap(1024, 14), std::size_t(10.2 * kMB), true});
  for (int i = 0; i < 3; ++i)
    m.layers.push_back({"layer4_" + std::to_string(i), 1.350 * kG,
                        fmap(2048, 7), std::size_t(26.0 * kMB), true});
  m.layers.push_back({"pool_fc", 0.004 * kG, 1000, std::size_t(7.8 * kMB), false});
  return m;
}

}  // namespace

double FixedModelProfile::total_flops() const noexcept {
  double f = 0;
  for (const auto& l : layers) f += l.flops;
  return f;
}

std::size_t FixedModelProfile::total_param_bytes() const noexcept {
  std::size_t b = 0;
  for (const auto& l : layers) b += l.param_bytes;
  return b;
}

std::size_t FixedModelProfile::out_bytes(std::size_t i) const noexcept {
  return i < layers.size() ? layers[i].out_elements * sizeof(float) : 0;
}

std::size_t FixedModelProfile::input_bytes() noexcept {
  return 3ull * 224 * 224 * sizeof(float);
}

const FixedModelProfile& mobilenet_v3_large() {
  static const FixedModelProfile m = make_mobilenet_v3();
  return m;
}
const FixedModelProfile& resnet50() {
  static const FixedModelProfile m = make_resnet50();
  return m;
}
const FixedModelProfile& inception_v3() {
  static const FixedModelProfile m = make_inception_v3();
  return m;
}
const FixedModelProfile& densenet161() {
  static const FixedModelProfile m = make_densenet161();
  return m;
}
const FixedModelProfile& resnext101_32x8d() {
  static const FixedModelProfile m = make_resnext101();
  return m;
}

std::vector<const FixedModelProfile*> model_zoo() {
  return {&mobilenet_v3_large(), &resnet50(), &inception_v3(), &densenet161(),
          &resnext101_32x8d()};
}

const FixedModelProfile* find_model(const std::string& name) {
  for (const auto* m : model_zoo())
    if (m->name == name) return m;
  return nullptr;
}

}  // namespace murmur::supernet
