#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/log.h"

namespace murmur::obs {

namespace {

std::atomic<bool> g_enabled{false};

void atomic_fmax(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_fadd(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

// ----------------------------------------------------------- Histogram ----

double Histogram::bucket_upper_ms(int i) noexcept {
  return kMinMs * std::pow(kMaxMs / kMinMs,
                           static_cast<double>(i + 1) / kBuckets);
}

int Histogram::bucket_index(double ms) noexcept {
  if (!(ms > kMinMs)) return 0;
  // Invert bucket_upper_ms: the first i with upper(i) >= ms.
  const double x = std::log(ms / kMinMs) / std::log(kMaxMs / kMinMs);
  int i = static_cast<int>(std::ceil(x * kBuckets)) - 1;
  i = std::clamp(i, 0, kBuckets - 1);
  // Guard against floating-point edge cases of the inversion.
  while (i > 0 && bucket_upper_ms(i - 1) >= ms) --i;
  while (i < kBuckets - 1 && bucket_upper_ms(i) < ms) ++i;
  return i;
}

void Histogram::observe(double ms) noexcept {
  if (!std::isfinite(ms)) return;
  if (ms < 0.0) ms = 0.0;
  buckets_[static_cast<std::size_t>(bucket_index(ms))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_fadd(sum_, ms);
  atomic_fmax(max_, ms);
}

double Histogram::mean_ms() const noexcept {
  const std::uint64_t n = count();
  return n ? sum_ms() / static_cast<double>(n) : 0.0;
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      const double lo = i == 0 ? 0.0 : bucket_upper_ms(i - 1);
      const double hi = std::min(bucket_upper_ms(i), max_ms());
      const double frac =
          std::clamp((target - static_cast<double>(cum)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
    cum += in_bucket;
  }
  return max_ms();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ------------------------------------------------------ MetricsRegistry ----

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out;
  out.reserve(1024);
  out += "{\"t_ms\":" + fmt_double(monotonic_ms());
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":" + fmt_double(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":{\"count\":" + std::to_string(h->count());
    out += ",\"sum_ms\":" + fmt_double(h->sum_ms());
    out += ",\"mean_ms\":" + fmt_double(h->mean_ms());
    out += ",\"p50_ms\":" + fmt_double(h->percentile(50));
    out += ",\"p90_ms\":" + fmt_double(h->percentile(90));
    out += ",\"p95_ms\":" + fmt_double(h->percentile(95));
    out += ",\"p99_ms\":" + fmt_double(h->percentile(99));
    out += ",\"max_ms\":" + fmt_double(h->max_ms());
    out += '}';
  }
  out += "}}";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

bool MetricsRegistry::append_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Counter* maybe_counter(const char* name) {
  if (!enabled()) return nullptr;
  return &MetricsRegistry::instance().counter(name);
}

Histogram* maybe_histogram(const char* name) {
  if (!enabled()) return nullptr;
  return &MetricsRegistry::instance().histogram(name);
}

}  // namespace murmur::obs
