// Telemetry metrics: a process-global, thread-safe registry of named
// counters, gauges and fixed-bucket latency histograms.
//
// Design constraints (paper Fig 10 runtime: sub-millisecond stages):
//   * The instruments themselves are lock-free atomics — safe to bump from
//     the executor's thread pool and the transport's worker threads.
//   * Registration (name -> instrument lookup) takes a mutex, so hot paths
//     either cache the returned reference or go through the `maybe_*` /
//     `add` / `observe` helpers, which are no-ops (one relaxed atomic load,
//     no locks) while telemetry is disabled.
//   * Histograms use log-spaced buckets covering 1 us .. 100 s, so one
//     shape serves both microsecond cache lookups and second-scale training
//     epochs; percentiles interpolate inside the matched bucket.
//
// The registry serializes to JSON (`to_json`/`write_json`) and appends
// single-line snapshots to a JSONL file (`append_jsonl`) for trajectories.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace murmur::obs {

/// Global telemetry switch. Default off: every MURMUR_SPAN and every
/// `maybe_*`/`add`/`gauge_set`/`observe` helper reduces to one relaxed
/// atomic load and a branch.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonically increasing counter. Always counts (lock-free); gating on
/// `enabled()` is the call site's choice — per-object counters such as the
/// StrategyCache statistics stay correct with telemetry off.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins floating-point gauge.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram (milliseconds). Log-spaced bucket upper
/// bounds from kMinMs to kMaxMs; observations below the range land in
/// bucket 0, above it in the last bucket. Lock-free.
class Histogram {
 public:
  static constexpr int kBuckets = 96;
  static constexpr double kMinMs = 1e-3;  // 1 us
  static constexpr double kMaxMs = 1e5;   // 100 s

  /// Inclusive upper bound of bucket `i`.
  static double bucket_upper_ms(int i) noexcept;
  /// Bucket index an observation of `ms` falls into.
  static int bucket_index(double ms) noexcept;

  void observe(double ms) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum_ms() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  double mean_ms() const noexcept;
  double max_ms() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  /// Percentile estimate, `p` in [0, 100]. Linear interpolation within the
  /// matched bucket; exact to within one bucket width (~10% relative).
  /// Returns 0 for an empty histogram.
  double percentile(double p) const noexcept;

  /// The tail triple CLI tables and attribution snapshots report. One
  /// relaxed pass per percentile; fields are mutually consistent only to
  /// the extent concurrent writers allow (reporting-grade, not a barrier).
  struct Quantiles {
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
  };
  Quantiles quantiles() const noexcept {
    return Quantiles{percentile(50.0), percentile(95.0), percentile(99.0)};
  }

  /// One-call summary for benches and CLI reporting. Fields read with
  /// relaxed ordering — consistent enough for reporting, not a barrier.
  struct Snapshot {
    std::uint64_t count = 0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
  };
  Snapshot snapshot() const noexcept {
    return Snapshot{count(),          mean_ms(),        percentile(50.0),
                    percentile(90.0), percentile(95.0), percentile(99.0),
                    max_ms()};
  }

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Process-global named-instrument registry. Instrument references stay
/// valid for the process lifetime (values held by unique_ptr; the registry
/// never erases).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Sorted names of every registered histogram (for report tables).
  std::vector<std::string> histogram_names() const;

  /// Full snapshot: {"t_ms":..,"counters":{..},"gauges":{..},
  /// "histograms":{name:{count,sum_ms,mean_ms,p50_ms,p90_ms,p99_ms,max_ms}}}.
  std::string to_json() const;
  bool write_json(const std::string& path) const;
  /// Append `to_json()` as one line (JSONL trajectory).
  bool append_jsonl(const std::string& path) const;

  /// Zero every instrument (names stay registered).
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// ---- disabled-path-free helpers for instrumentation sites -----------------

/// Named counter when telemetry is on, nullptr (and no lock) when off.
Counter* maybe_counter(const char* name);
Histogram* maybe_histogram(const char* name);

/// Bump `name` by `n` if telemetry is enabled.
inline void add(const char* name, std::uint64_t n = 1) {
  if (enabled()) MetricsRegistry::instance().counter(name).inc(n);
}
/// Set gauge `name` if telemetry is enabled.
inline void gauge_set(const char* name, double v) {
  if (enabled()) MetricsRegistry::instance().gauge(name).set(v);
}
/// Record `ms` into histogram `name` if telemetry is enabled.
inline void observe(const char* name, double ms) {
  if (enabled()) MetricsRegistry::instance().histogram(name).observe(ms);
}

}  // namespace murmur::obs
