#include "obs/attrib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <set>

#include "common/log.h"

namespace murmur::obs {

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kBatchWindow: return "batch_window";
    case Phase::kDecision: return "decision";
    case Phase::kSwitch: return "switch";
    case Phase::kTransportSend: return "transport_send";
    case Phase::kTransportRecv: return "transport_recv";
    case Phase::kCompute: return "compute";
    case Phase::kGather: return "gather";
    case Phase::kFailover: return "failover";
    case Phase::kCount: break;
  }
  return "unknown";
}

namespace {

// Histogram* stays valid for the process lifetime (the registry never
// erases), so the per-phase pointers are resolved once and cached.
struct PhaseHistograms {
  std::array<Histogram*, kPhaseCount> sim{};
  std::array<Histogram*, kPhaseCount> wall{};
};

PhaseHistograms& phase_histograms() {
  static PhaseHistograms* h = [] {
    auto* ph = new PhaseHistograms;
    auto& reg = MetricsRegistry::instance();
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const char* name = phase_name(static_cast<Phase>(i));
      ph->sim[i] = &reg.histogram(std::string("attrib.phase.") + name);
      ph->wall[i] = &reg.histogram(std::string("attrib.wall.") + name);
    }
    return ph;
  }();
  return *h;
}

// Bounded per-strategy key set. Strategy fingerprints are unbounded in
// principle (hash of plan + rung); the first kMaxStrategyKeys distinct keys
// get their own histogram, the rest share "other" so a chaotic workload
// cannot grow the registry without bound.
Histogram& strategy_histogram(std::uint64_t key) {
  static std::mutex mutex;
  static std::set<std::uint64_t> keys;
  auto& reg = MetricsRegistry::instance();
  {
    std::lock_guard lock(mutex);
    if (keys.count(key) == 0) {
      if (keys.size() >= kMaxStrategyKeys)
        return reg.histogram("attrib.strategy.other.latency_ms");
      keys.insert(key);
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "attrib.strategy.%016llx.latency_ms",
                static_cast<unsigned long long>(key));
  return reg.histogram(buf);
}

}  // namespace

void note_request(const PhaseLedger& ledger,
                  const std::vector<DeviceSlice>& devices,
                  std::uint64_t strategy_key, double observed_sim_ms,
                  int replica) {
  if (!enabled()) return;
  auto& ph = phase_histograms();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    // Zero sim phases are skipped so e.g. single-device strategies do not
    // flood transport histograms with zeros; queue_wait always records
    // (a zero wait is a real observation for queue-health percentiles).
    const double sim = ledger.sim_ms[i];
    if (sim > 0.0 || static_cast<Phase>(i) == Phase::kQueueWait)
      ph.sim[i]->observe(sim);
    const double wall = ledger.wall_ms[i];
    if (wall > 0.0) ph.wall[i]->observe(wall);
  }
  auto& reg = MetricsRegistry::instance();
  for (const auto& d : devices) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "attrib.dev%d.send_ms", d.device);
    if (d.send_ms > 0.0) reg.histogram(buf).observe(d.send_ms);
    std::snprintf(buf, sizeof(buf), "attrib.dev%d.recv_ms", d.device);
    if (d.recv_ms > 0.0) reg.histogram(buf).observe(d.recv_ms);
    std::snprintf(buf, sizeof(buf), "attrib.dev%d.compute_ms", d.device);
    if (d.compute_ms > 0.0) reg.histogram(buf).observe(d.compute_ms);
  }
  strategy_histogram(strategy_key).observe(observed_sim_ms);
  if (replica >= 0) {
    // Replica ids are bounded by pool size (operator-chosen, single
    // digits in practice), so no "other" cap is needed here.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "attrib.replica%d.latency_ms", replica);
    reg.histogram(buf).observe(observed_sim_ms);
  }
}

bool check_invariant(double attributed_ms, double observed_ms,
                     double tol_ms) {
  if (std::abs(attributed_ms - observed_ms) <= tol_ms) return false;
  add("attrib.invariant_violations");
  // Warn, not error: the counter is the alarm surface (tests and the
  // tier-1 gate assert it stays zero), and the tier-1 log scrub treats
  // any error-level line in a green run as a silent failure — which the
  // deliberately provoked violation in test_attrib.cpp is not.
  MURMUR_LOG_WARN << "phase-sum invariant violated: attributed "
                  << attributed_ms << " ms vs observed " << observed_ms
                  << " ms (tol " << tol_ms << ")";
  return true;
}

RollingOutcomeWindow::RollingOutcomeWindow(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {}

void RollingOutcomeWindow::record(bool slo_met, bool shed) {
  std::lock_guard lock(mutex_);
  if (count_ == ring_.size()) {
    const Slot& old = ring_[head_];
    met_ -= old.slo_met ? 1 : 0;
    shed_ -= old.shed ? 1 : 0;
  } else {
    ++count_;
  }
  ring_[head_] = Slot{slo_met, shed};
  head_ = (head_ + 1) % ring_.size();
  met_ += slo_met ? 1 : 0;
  shed_ += shed ? 1 : 0;
}

std::size_t RollingOutcomeWindow::size() const {
  std::lock_guard lock(mutex_);
  return count_;
}

double RollingOutcomeWindow::compliance() const {
  std::lock_guard lock(mutex_);
  return count_ ? static_cast<double>(met_) / static_cast<double>(count_)
                : 0.0;
}

double RollingOutcomeWindow::shed_rate() const {
  std::lock_guard lock(mutex_);
  return count_ ? static_cast<double>(shed_) / static_cast<double>(count_)
                : 0.0;
}

double RollingOutcomeWindow::burn_rate(double target) const {
  if (target >= 1.0) return 0.0;
  std::lock_guard lock(mutex_);
  if (count_ == 0) return 0.0;
  const double miss =
      1.0 - static_cast<double>(met_) / static_cast<double>(count_);
  return miss / (1.0 - target);
}

}  // namespace murmur::obs
