// Per-request latency attribution: the phase ledger and its aggregation.
//
// Every admitted request's observed sim latency (queue wait + executor sim
// latency) is attributed to an exhaustive set of phases; the ledger carries
// one slot per phase on two clocks:
//
//   * sim_ms  — the simulated clock the SLO is judged on. The invariant
//     `sim_total() == observed sim latency` holds to within 1e-6 ms for
//     every request (tests/test_attrib.cpp asserts it across serial,
//     batched and fault-injected serving).
//   * wall_ms — host wall clock, informational. Wall phases do NOT sum to
//     the wall request latency (threads overlap, the dispatcher batches);
//     they exist to explain sim/wall gaps such as the batched-vs-serial
//     throughput inversion in BENCH_serving.json.
//
// Phase taxonomy (DESIGN.md §5.11):
//   kQueueWait      admission queue: est_start - arrival on the sim clock.
//   kBatchWindow    dispatcher coalescing delay. Zero on the sim clock by
//                   construction — the occupancy model amortizes batching
//                   into per-member occupancy instead of charging a wait —
//                   so the phase is wall-only today; the slot exists so the
//                   taxonomy stays exhaustive when that changes.
//   kDecision       monitor + strategy cache / RL decide (wall-only; the
//                   sim clock does not model decision latency).
//   kSwitch         supernet weight-switch (wall-only, amortized over a
//                   coalesced batch: first member carries it).
//   kTransportSend  serialization legs of every critical-path transfer
//                   (bandwidth component of netsim's transfer_ms).
//   kTransportRecv  propagation legs (path-delay component) of the same
//                   transfers.
//   kCompute        critical-path device compute.
//   kGather         head-side gather: logits assembly + the final
//                   logits-return transfer.
//   kFailover       executor failover penalty (redispatch / local
//                   fallback), already a separate term in the report.
//
// Aggregation: `note_request` feeds per-phase, per-device and per-strategy
// log-bucket histograms in the global MetricsRegistry (names below), all
// gated on obs::enabled(). Registry pointers are stable for the process
// lifetime, so call sites may cache Histogram*.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace murmur::obs {

enum class Phase : std::uint8_t {
  kQueueWait = 0,
  kBatchWindow,
  kDecision,
  kSwitch,
  kTransportSend,
  kTransportRecv,
  kCompute,
  kGather,
  kFailover,
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

/// Short stable identifier ("queue_wait", "transport_send", ...), used in
/// histogram names, JSON keys and CLI tables.
const char* phase_name(Phase p) noexcept;

/// Per-request dual-clock attribution record. Plain value type — copied
/// into InferenceResult and the flight recorder; no locking, no telemetry
/// dependency (safe to fill even when obs is disabled).
struct PhaseLedger {
  std::array<double, kPhaseCount> sim_ms{};
  std::array<double, kPhaseCount> wall_ms{};

  void charge(Phase p, double ms) noexcept {
    sim_ms[static_cast<std::size_t>(p)] += ms;
  }
  void charge_wall(Phase p, double ms) noexcept {
    wall_ms[static_cast<std::size_t>(p)] += ms;
  }
  double sim(Phase p) const noexcept {
    return sim_ms[static_cast<std::size_t>(p)];
  }
  double wall(Phase p) const noexcept {
    return wall_ms[static_cast<std::size_t>(p)];
  }
  /// Sum of every sim phase — must equal observed sim latency ±1e-6 ms.
  double sim_total() const noexcept {
    double t = 0.0;
    for (double v : sim_ms) t += v;
    return t;
  }
  double wall_total() const noexcept {
    double t = 0.0;
    for (double v : wall_ms) t += v;
    return t;
  }
};

/// Per-device attribution slice (send/recv/compute on the sim clock), as
/// decomposed by the partition evaluator's critical-path playout.
struct DeviceSlice {
  int device = 0;
  double send_ms = 0.0;
  double recv_ms = 0.0;
  double compute_ms = 0.0;
};

/// Feed one completed request into the aggregate histograms:
///   attrib.phase.<phase>            sim ms per phase (zero phases skipped)
///   attrib.wall.<phase>             wall ms per phase (nonzero only)
///   attrib.dev<d>.{send,recv,compute}_ms   per-device slices
///   attrib.strategy.<key>.latency_ms       per-strategy observed latency
///   attrib.replica<r>.latency_ms           per-replica observed latency
///                                          (r >= 0 only; single-system
///                                          callers pass the default -1
///                                          and emit no replica series)
/// Strategy keys are capped (kMaxStrategyKeys); overflow lands in
/// "attrib.strategy.other.latency_ms". No-op while telemetry is disabled.
void note_request(const PhaseLedger& ledger,
                  const std::vector<DeviceSlice>& devices,
                  std::uint64_t strategy_key, double observed_sim_ms,
                  int replica = -1);

inline constexpr std::size_t kMaxStrategyKeys = 32;

/// Count one phase-sum invariant violation ("attrib.invariant_violations")
/// and log it at warn level (the counter — asserted zero by tests and the
/// tier-1 gate — is the alarm surface). Returns violation status so call
/// sites can branch; |attributed - observed| <= tol_ms passes.
bool check_invariant(double attributed_ms, double observed_ms,
                     double tol_ms = 1e-6);

/// Rolling window over recent request outcomes: SLO compliance, shed rate
/// and the derived SLO burn rate. Mutex-protected — finalize runs on pool
/// workers concurrently; windows are small (default 512) so the lock is
/// uncontended in practice.
class RollingOutcomeWindow {
 public:
  explicit RollingOutcomeWindow(std::size_t capacity = 512);

  void record(bool slo_met, bool shed);

  std::size_t size() const;
  /// Fraction of windowed requests that met their SLO (shed requests count
  /// against compliance — a shed deadline is a missed deadline).
  double compliance() const;
  /// Fraction of windowed requests shed at admission.
  double shed_rate() const;
  /// Error budget burn: (1 - compliance) / (1 - target). 1.0 means burning
  /// exactly at target rate; >1 exhausts the budget early. 0 when the
  /// window is empty or the target is degenerate (>= 1).
  double burn_rate(double target = 0.95) const;

 private:
  struct Slot {
    bool slo_met = false;
    bool shed = false;
  };
  mutable std::mutex mutex_;
  std::vector<Slot> ring_;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // min(total records, capacity)
  std::size_t met_ = 0;    // windowed slo_met count
  std::size_t shed_ = 0;   // windowed shed count
};

}  // namespace murmur::obs
