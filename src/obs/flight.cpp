#include "obs/flight.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/log.h"

namespace murmur::obs {

const char* to_string(FlightOutcome o) noexcept {
  switch (o) {
    case FlightOutcome::kCompleted: return "completed";
    case FlightOutcome::kDegraded: return "degraded";
    case FlightOutcome::kShed: return "shed";
    case FlightOutcome::kFailed: return "failed";
  }
  return "unknown";
}

void FlightRecord::set_shed_reason(const char* reason) noexcept {
  if (!reason) reason = "";
  std::snprintf(shed_reason, sizeof(shed_reason), "%s", reason);
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder;  // never destroyed:
  return *recorder;  // serving workers may record during static teardown
}

FlightRecorder::FlightRecorder() : ring_(4096) {}

void FlightRecorder::record(const FlightRecord& r) {
  if (!enabled()) return;
  std::shared_lock resize(resize_mutex_);
  if (ring_.empty()) return;
  const std::uint64_t slot64 = next_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t slot = static_cast<std::size_t>(slot64 % ring_.size());
  std::lock_guard lock(shard_mutexes_[slot % kShards]);
  ring_[slot] = r;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  std::unique_lock resize(resize_mutex_);
  ring_.assign(std::max<std::size_t>(1, capacity), FlightRecord{});
  next_.store(0, std::memory_order_relaxed);
}

std::size_t FlightRecorder::capacity() const {
  std::shared_lock resize(resize_mutex_);
  return ring_.size();
}

std::uint64_t FlightRecorder::total() const noexcept {
  return next_.load(std::memory_order_relaxed);
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::shared_lock resize(resize_mutex_);
  std::array<std::unique_lock<std::mutex>, kShards> locks;
  for (std::size_t i = 0; i < kShards; ++i)
    locks[i] = std::unique_lock(shard_mutexes_[i]);
  const std::uint64_t written = next_.load(std::memory_order_relaxed);
  const std::uint64_t n = std::min<std::uint64_t>(written, ring_.size());
  std::vector<FlightRecord> out;
  out.reserve(static_cast<std::size_t>(n));
  // Oldest live record sits at written - n (mod capacity).
  for (std::uint64_t i = written - n; i < written; ++i)
    out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
  return out;
}

void FlightRecorder::reset() {
  std::unique_lock resize(resize_mutex_);
  for (auto& r : ring_) r = FlightRecord{};
  next_.store(0, std::memory_order_relaxed);
}

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_phase_object(std::string& out, const float* phases) {
  out += '{';
  bool first = true;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (phases[i] == 0.0f) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += phase_name(static_cast<Phase>(i));
    out += "\":";
    out += fmt(phases[i]);
  }
  out += '}';
}

}  // namespace

std::string to_json(const FlightRecord& r) {
  std::string out;
  out.reserve(512);
  out += "{\"seq\":" + std::to_string(r.seq);
  out += ",\"outcome\":\"";
  out += to_string(r.outcome);
  out += '"';
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"strategy\":\"%016llx\"",
                static_cast<unsigned long long>(r.strategy_key));
  out += buf;
  out += ",\"rung\":" + std::to_string(r.rung);
  out += ",\"replica\":" + std::to_string(r.replica);
  out += ",\"device_mask\":" + std::to_string(r.device_mask);
  out += ",\"breaker_open_mask\":" + std::to_string(r.breaker_open_mask);
  out += ",\"sim_arrival_ms\":" + fmt(r.sim_arrival_ms);
  out += ",\"sim_start_ms\":" + fmt(r.sim_start_ms);
  out += ",\"sim_latency_ms\":" + fmt(r.sim_latency_ms);
  out += std::string(",\"cache_hit\":") + (r.cache_hit ? "true" : "false");
  out += std::string(",\"slo_met\":") + (r.slo_met ? "true" : "false");
  out += std::string(",\"batched\":") + (r.batched ? "true" : "false");
  if (r.shed_reason[0]) {
    out += ",\"shed_reason\":\"";
    out += r.shed_reason;
    out += '"';
  }
  if (r.constraint_dims > 0) {
    out += ",\"slo_value\":" + fmt(r.slo_value);
    out += ",\"constraint\":[";
    for (int i = 0; i < r.constraint_dims && i < FlightRecord::kMaxConstraintDims;
         ++i) {
      if (i) out += ',';
      out += fmt(r.constraint[i]);
    }
    out += ']';
  }
  out += ",\"sim_phases_ms\":";
  append_phase_object(out, r.sim_phase_ms);
  out += ",\"wall_phases_ms\":";
  append_phase_object(out, r.wall_phase_ms);
  out += ",\"devices\":[";
  bool first = true;
  for (const auto& d : r.dev) {
    if (d.device < 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"device\":" + std::to_string(d.device);
    out += ",\"send_ms\":" + fmt(d.send_ms);
    out += ",\"recv_ms\":" + fmt(d.recv_ms);
    out += ",\"compute_ms\":" + fmt(d.compute_ms);
    out += '}';
  }
  out += "]}";
  return out;
}

bool FlightRecorder::write_jsonl(const std::string& path) const {
  const auto records = snapshot();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = true;
  for (const auto& r : records) {
    const std::string line = to_json(r);
    ok = ok && std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
         std::fputc('\n', f) != EOF;
  }
  std::fclose(f);
  return ok;
}

bool FlightRecorder::write_chrome(const std::string& path) const {
  const auto records = snapshot();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::string out;
  out.reserve(records.size() * 640 + 256);
  out += "[\n";
  // Process metadata: pid 1 is the serving/admission plane, pid 100+d is
  // simulated device d. Emitted for every device any record touched.
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"serving/admission\"}}";
  std::uint64_t devices_seen = 0;
  for (const auto& r : records) devices_seen |= r.device_mask;
  for (int d = 0; d < 64; ++d) {
    if (!(devices_seen >> d & 1)) continue;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":0,\"args\":{\"name\":\"device %d\"}}",
                  100 + d, d);
    out += buf;
  }
  // Spans on the sim clock, 1 sim-ms = 1000 trace-us.
  const auto us = [](double sim_ms) {
    return static_cast<long long>(sim_ms * 1000.0);
  };
  for (const auto& r : records) {
    char buf[256];
    const long long arrival = us(r.sim_arrival_ms);
    const long long start = us(r.sim_start_ms);
    const long long queue_dur = std::max<long long>(0, start - arrival);
    // Admission/queue span (pid 1). Shed requests only ever get this span.
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"req %llu %s\",\"cat\":\"request\","
                  "\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld,\"pid\":1,"
                  "\"tid\":1,\"args\":{\"outcome\":\"%s\",\"rung\":%d",
                  static_cast<unsigned long long>(r.seq), "queue",
                  arrival, std::max<long long>(queue_dur, 1), to_string(r.outcome),
                  static_cast<int>(r.rung));
    out += buf;
    if (r.shed_reason[0]) {
      out += ",\"shed_reason\":\"";
      out += r.shed_reason;
      out += '"';
    }
    std::snprintf(buf, sizeof(buf), ",\"strategy\":\"%016llx\"}}",
                  static_cast<unsigned long long>(r.strategy_key));
    out += buf;
    if (r.outcome == FlightOutcome::kShed) continue;
    // Flow origin at the end of the queue span...
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"dispatch\",\"cat\":\"flow\",\"ph\":\"s\","
                  "\"id\":%llu,\"ts\":%lld,\"pid\":1,\"tid\":1}",
                  static_cast<unsigned long long>(r.seq), start);
    out += buf;
    // ...binding to an execution span on every participating device.
    const long long exec_end = us(r.sim_arrival_ms + r.sim_latency_ms);
    const long long exec_dur = std::max<long long>(1, exec_end - start);
    for (const auto& d : r.dev) {
      if (d.device < 0) continue;
      const int pid = 100 + d.device;
      std::snprintf(
          buf, sizeof(buf),
          ",\n{\"name\":\"req %llu exec\",\"cat\":\"exec\",\"ph\":\"X\","
          "\"ts\":%lld,\"dur\":%lld,\"pid\":%d,\"tid\":1,\"args\":{"
          "\"send_ms\":%.6g,\"recv_ms\":%.6g,\"compute_ms\":%.6g}}",
          static_cast<unsigned long long>(r.seq), start, exec_dur, pid,
          static_cast<double>(d.send_ms), static_cast<double>(d.recv_ms),
          static_cast<double>(d.compute_ms));
      out += buf;
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\":\"dispatch\",\"cat\":\"flow\",\"ph\":\"f\","
                    "\"bp\":\"e\",\"id\":%llu,\"ts\":%lld,\"pid\":%d,"
                    "\"tid\":1}",
                    static_cast<unsigned long long>(r.seq), start, pid);
      out += buf;
    }
  }
  out += "\n]\n";
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

}  // namespace murmur::obs
