#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/log.h"

namespace murmur::obs {

namespace {

void copy_str(char* dst, std::size_t cap, const char* src) {
  if (!src) src = "";
  std::strncpy(dst, src, cap - 1);
  dst[cap - 1] = '\0';
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Buffer& Tracer::local_buffer() {
  thread_local std::shared_ptr<Buffer> tl_buffer;
  if (!tl_buffer) {
    tl_buffer = std::make_shared<Buffer>();
    std::lock_guard lock(mutex_);
    buffers_.push_back(tl_buffer);
  }
  return *tl_buffer;
}

void Tracer::record(const char* name, const char* cat, double ts_us,
                    double dur_us) {
  Buffer& buf = local_buffer();
  std::lock_guard lock(buf.mutex);
  if (buf.events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  copy_str(e.name, sizeof(e.name), name);
  copy_str(e.cat, sizeof(e.cat), cat);
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = current_thread_id();
  buf.events.push_back(e);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    std::lock_guard lock(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return out;
}

std::size_t Tracer::event_count() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  std::size_t n = 0;
  for (const auto& buf : buffers) {
    std::lock_guard lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

std::string Tracer::to_chrome_json() const {
  const auto evs = events();
  std::string out;
  out.reserve(evs.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  // Metadata first: one process_name, plus a thread_name for every tid
  // that registered one (common/log thread-name registry) — pool workers
  // and the serving dispatcher name themselves, so exported traces show
  // "serving/w2" instead of an anonymous tid.
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                "\"tid\":0,\"args\":{\"name\":\"murmuration\"}}");
  out += buf;
  first = false;
  for (const auto& [tid, name] : thread_names()) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  tid, name.c_str());
    out += buf;
  }
  for (const auto& e : evs) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                  e.name, e.cat, e.ts_us, e.dur_us, e.tid);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    std::lock_guard lock(buf->mutex);
    buf->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name, const char* cat, Histogram* hist) {
  if (!enabled()) return;
  name_ = name;
  cat_ = cat;
  hist_ = hist;
  t0_us_ = monotonic_ms() * 1000.0;
  active_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const double t1_us = monotonic_ms() * 1000.0;
  Tracer::instance().record(name_, cat_, t0_us_, t1_us - t0_us_);
  if (hist_) hist_->observe((t1_us - t0_us_) / 1000.0);
}

}  // namespace murmur::obs
