// Per-request span tracing with Chrome trace-event export.
//
// `ScopedSpan` is the instrumentation primitive: RAII begin/end around one
// runtime stage (monitor refresh, cache lookup, RL decision, supernet
// reconfig, transport, tile execution, SUPREME epochs, ...). Spans record
// into per-thread buffers — a recording thread only ever touches its own
// buffer's mutex (uncontended except during export), so tile workers on the
// executor's thread pool trace without cross-thread interference.
//
// Export is the Chrome trace-event JSON array format: load the file at
// chrome://tracing or https://ui.perfetto.dev. Timestamps are microseconds
// on the same monotonic epoch the logger prints, so log lines correlate
// with spans by timestamp and thread id.
//
// When telemetry is disabled (obs::enabled() == false), constructing a
// ScopedSpan is one relaxed atomic load and a branch: no clock read, no
// lock, no allocation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace murmur::obs {

/// One completed span ("ph":"X" in the Chrome format). Name/category are
/// stored inline so events never dangle.
struct TraceEvent {
  char name[48] = {};
  char cat[16] = {};
  double ts_us = 0.0;   // start, us since process start
  double dur_us = 0.0;  // duration, us
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Record one completed span on the calling thread's buffer. Buffers cap
  /// at kMaxEventsPerThread; overflow increments dropped() instead of
  /// growing without bound.
  void record(const char* name, const char* cat, double ts_us, double dur_us);

  /// Merged snapshot of every thread's buffer, sorted by start time.
  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string to_chrome_json() const;
  bool write_chrome_trace(const std::string& path) const;

  void clear();

  static constexpr std::size_t kMaxEventsPerThread = 1u << 20;

 private:
  Tracer() = default;

  struct Buffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
  };
  Buffer& local_buffer();

  mutable std::mutex mutex_;  // guards buffers_ (the list, not the contents)
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII span: records [construction, destruction) as one complete event.
/// Optionally feeds the duration (in ms) into a histogram so the same
/// instrumentation yields both the trace and the p50/p99 metrics.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "murmur",
                      Histogram* hist = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  Histogram* hist_ = nullptr;
  double t0_us_ = 0.0;
};

}  // namespace murmur::obs

// Span macro with a unique local name, for sites that never reference the
// span object: MURMUR_SPAN("cache_lookup", "runtime").
#define MURMUR_SPAN_CONCAT2(a, b) a##b
#define MURMUR_SPAN_CONCAT(a, b) MURMUR_SPAN_CONCAT2(a, b)
#define MURMUR_SPAN(...) \
  ::murmur::obs::ScopedSpan MURMUR_SPAN_CONCAT(murmur_span_, __LINE__)(__VA_ARGS__)
