// Flight recorder: a lock-light, fixed-size ring of recent request records
// (DESIGN.md §5.11).
//
// Every request the serving layer resolves — completed, degraded, shed or
// failed — deposits one POD FlightRecord. The ring holds the most recent
// `capacity` records (default 4096); older ones are overwritten. Writers
// take one of 16 sharded mutexes (shard = slot % 16), so concurrent
// serving workers almost never contend and the hot path stays a
// fetch_add + small struct copy. A seqlock would be cheaper still, but its
// benign payload races are indistinguishable from real ones under TSan,
// and the attribution tests run in the TSan pass — sharded locks keep the
// recorder provably race-free.
//
// Exports:
//   * write_jsonl    — one JSON object per record, oldest first.
//   * write_chrome   — chrome://tracing / Perfetto trace on the SIM clock
//     (1 sim-ms = 1000 trace-us): pid 1 is the serving/admission plane,
//     pid 100+d is simulated device d. Each record emits its queue span,
//     per-device execution spans, and `s`/`f` flow events keyed on the
//     request seq so the UI draws causal arrows from admission to every
//     device the request touched.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "obs/attrib.h"

namespace murmur::obs {

/// Serving-level outcome mirror (obs cannot depend on runtime).
enum class FlightOutcome : std::uint8_t {
  kCompleted = 0,
  kDegraded = 1,
  kShed = 2,
  kFailed = 3,
};

const char* to_string(FlightOutcome o) noexcept;

/// One request's flight record. POD, fixed size; stored by value in the
/// ring. Phase arrays are float — 1e-6-ms-exact sums live in the metrics
/// layer, the recorder is for inspection.
struct FlightRecord {
  std::uint64_t seq = 0;           // serving admission sequence number
  std::uint64_t strategy_key = 0;  // coalescing fingerprint (0 if shed)
  std::uint64_t device_mask = 0;   // bit d: device d participated
  std::uint64_t breaker_open_mask = 0;  // bit d: breaker d open at finish
  double sim_arrival_ms = 0.0;
  double sim_start_ms = 0.0;    // arrival + queue wait
  double sim_latency_ms = 0.0;  // observed (queue + execution), 0 if shed
  float sim_phase_ms[kPhaseCount] = {};
  float wall_phase_ms[kPhaseCount] = {};
  /// Up to kMaxDeviceSlices per-device slices; device < 0 marks unused.
  static constexpr int kMaxDeviceSlices = 8;
  struct DevicePhase {
    std::int16_t device = -1;
    float send_ms = 0.0f;
    float recv_ms = 0.0f;
    float compute_ms = 0.0f;
  };
  DevicePhase dev[kMaxDeviceSlices] = {};
  /// Planning constraint (normalized tightness coords, see rl/env.h) and
  /// the concrete SLO value the decision planned against. Zero dims means
  /// "not recorded" (shed requests, pre-adaptation records). The online
  /// adapter's guardrail shadow-replays recent records from these.
  static constexpr int kMaxConstraintDims = 12;
  float constraint[kMaxConstraintDims] = {};
  std::uint8_t constraint_dims = 0;
  float slo_value = 0.0f;
  FlightOutcome outcome = FlightOutcome::kCompleted;
  /// Serving replica that executed the request; -1 in single-system mode
  /// (no pool) and for shed requests, which never reach a replica.
  std::int16_t replica = -1;
  std::int16_t rung = 0;
  bool cache_hit = false;
  bool slo_met = false;
  bool batched = false;
  char shed_reason[20] = {};  // "" unless outcome == kShed

  void set_shed_reason(const char* reason) noexcept;
};

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Deposit one record (no-op while obs::enabled() is false). The
  /// record's slot is chosen by a relaxed fetch_add, so concurrent writers
  /// never block each other unless they hash to the same shard.
  void record(const FlightRecord& r);

  /// Resize the ring and drop all records (tests shrink it to exercise
  /// wraparound; murmurctl grows it for long overload runs).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;
  /// Total records ever deposited (monotonic; >= capacity means the ring
  /// has wrapped).
  std::uint64_t total() const noexcept;

  /// Stable copy of the current ring contents, oldest first.
  std::vector<FlightRecord> snapshot() const;

  /// One JSON object per record, oldest first. Returns false on I/O error.
  bool write_jsonl(const std::string& path) const;
  /// Chrome trace (JSON array form) on the sim clock; see file header.
  bool write_chrome(const std::string& path) const;

  /// Drop all records (capacity unchanged).
  void reset();

 private:
  FlightRecorder();

  static constexpr std::size_t kShards = 16;

  mutable std::array<std::mutex, kShards> shard_mutexes_;
  /// Reader-writer guard for ring_ REALLOCATION only: record/snapshot take
  /// it shared (uncontended among themselves), set_capacity exclusive.
  mutable std::shared_mutex resize_mutex_;
  std::vector<FlightRecord> ring_;
  std::atomic<std::uint64_t> next_{0};  // total records ever written
};

/// Serialize one record as a single-line JSON object (shared by the JSONL
/// export and tests).
std::string to_json(const FlightRecord& r);

}  // namespace murmur::obs
