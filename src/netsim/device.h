// Simulated edge devices.
//
// Substitution (DESIGN.md §2): the paper's physical testbed is one
// Raspberry Pi 4 + one AMD Ryzen 5500 / GTX1080 desktop (Augmented
// Computing scenario) and five Raspberry Pi 4s (Device Swarm scenario).
// Each device is modelled by an effective fp32 CNN throughput, calibrated
// so single-device latencies of the zoo models land in the regime the
// paper's figures imply (e.g. fixed MobileNetV3 cannot meet a 140 ms SLO
// on the Pi alone, ResNeXt101 cannot meet it even on the GPU).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace murmur::netsim {

enum class DeviceType { kRaspberryPi4, kDesktopCpu, kDesktopGpu, kJetson };

const char* device_type_name(DeviceType t) noexcept;

/// Calibrated effective throughput per device type.
Throughput device_throughput(DeviceType t) noexcept;

/// Normalized device-type feature for the RL policy state (0..1).
double device_type_feature(DeviceType t) noexcept;

struct Device {
  int id = 0;
  DeviceType type = DeviceType::kRaspberryPi4;
  Throughput throughput = device_throughput(DeviceType::kRaspberryPi4);
  std::string name;

  static Device make(int id, DeviceType type);
};

}  // namespace murmur::netsim
