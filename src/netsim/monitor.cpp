#include "netsim/monitor.h"

#include <algorithm>

#include "obs/trace.h"

namespace murmur::netsim {

NetworkMonitor::NetworkMonitor(const Network& network, Options opts)
    : network_(network),
      opts_(opts),
      rng_(opts.seed),
      history_(network.num_devices()),
      bw_ewma_(network.num_devices(), Ewma(opts.ewma_alpha)),
      delay_ewma_(network.num_devices(), Ewma(opts.ewma_alpha)) {}

MonitorSample NetworkMonitor::probe(std::size_t device, double t_ms) {
  const auto& link = network_.link(device);
  MonitorSample s;
  s.t_ms = t_ms;
  s.bandwidth_mbps =
      std::max(0.01, link.bandwidth.mbps *
                         (1.0 + rng_.normal(0.0, opts_.bandwidth_noise)));
  s.delay_ms = std::max(
      0.0, link.delay.ms * (1.0 + rng_.normal(0.0, opts_.delay_noise)));
  history_[device].push_back(s);
  while (history_[device].size() > opts_.history) history_[device].pop_front();
  bw_ewma_[device].add(s.bandwidth_mbps);
  delay_ewma_[device].add(s.delay_ms);
  return s;
}

void NetworkMonitor::probe_all(double t_ms) {
  MURMUR_SPAN("monitor.probe_all", "netsim",
              obs::maybe_histogram("stage.probe_all_ms"));
  obs::add("monitor.probes",
           network_.num_devices() > 0 ? network_.num_devices() - 1 : 0);
  for (std::size_t d = 1; d < network_.num_devices(); ++d) probe(d, t_ms);
}

void NetworkMonitor::observe_transfer(std::size_t device, double bytes,
                                      double elapsed_ms, double t_ms) {
  obs::add("monitor.passive_observations");
  const double delay = delay_estimate(device);
  const double serialize_ms = std::max(0.1, elapsed_ms - delay);
  MonitorSample s;
  s.t_ms = t_ms;
  s.bandwidth_mbps = bytes * 8.0 / 1e6 / (serialize_ms / 1e3);
  s.delay_ms = delay;
  history_[device].push_back(s);
  while (history_[device].size() > opts_.history) history_[device].pop_front();
  bw_ewma_[device].add(s.bandwidth_mbps);
}

void NetworkMonitor::reset_device(std::size_t device) noexcept {
  if (device >= history_.size()) return;
  history_[device].clear();
  bw_ewma_[device] = Ewma(opts_.ewma_alpha);
  delay_ewma_[device] = Ewma(opts_.ewma_alpha);
}

double NetworkMonitor::bandwidth_estimate(std::size_t device) const noexcept {
  if (bw_ewma_[device].initialized()) return bw_ewma_[device].value();
  return network_.link(device).bandwidth.mbps;  // no probe yet
}

double NetworkMonitor::delay_estimate(std::size_t device) const noexcept {
  if (delay_ewma_[device].initialized()) return delay_ewma_[device].value();
  return network_.link(device).delay.ms;
}

NetworkConditions NetworkMonitor::estimate() const {
  NetworkConditions c;
  for (std::size_t d = 0; d < network_.num_devices(); ++d) {
    if (d == 0) {
      c.bandwidth_mbps.push_back(network_.link(0).bandwidth.mbps);
      c.delay_ms.push_back(network_.link(0).delay.ms);
    } else {
      c.bandwidth_mbps.push_back(bandwidth_estimate(d));
      c.delay_ms.push_back(delay_estimate(d));
    }
  }
  return c;
}

}  // namespace murmur::netsim
