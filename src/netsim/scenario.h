// The paper's two evaluation scenarios (§6) plus a scalable swarm builder
// for the Fig 17 scalability sweep, and a random-walk dynamics process for
// "dynamic edge environment" experiments.
#pragma once

#include <memory>

#include "common/rng.h"
#include "netsim/network.h"

namespace murmur::netsim {

enum class Scenario { kAugmentedComputing, kDeviceSwarm };

const char* scenario_name(Scenario s) noexcept;

/// Augmented Computing: Raspberry Pi 4 (local) + GTX1080 desktop (remote).
Network make_augmented_computing();
/// Device Swarm: 5 Raspberry Pi 4s (1 local + 4 remote).
Network make_device_swarm();
/// Swarm of `n` Raspberry Pi 4s (Fig 17 sweeps n = 1..9).
Network make_pi_swarm(std::size_t n);
Network make_scenario(Scenario s);

/// Shape every remote device's link; the local access link stays at
/// 1 Gbps / ~0 ms so the per-remote shaping alone defines path conditions
/// (matching how tc shaping is applied in the paper's testbed).
void shape_remotes(Network& net, Bandwidth bw, Delay delay) noexcept;

/// Bounded random-walk evolution of link conditions — the "dynamic edge
/// environment". Each step multiplies bandwidth by exp(N(0, sigma_bw)) and
/// perturbs delay additively, clamped to [min, max].
class NetworkDynamics {
 public:
  struct Options {
    double sigma_bw = 0.08;
    double sigma_delay_ms = 2.0;
    double min_bandwidth_mbps = 5.0;
    double max_bandwidth_mbps = 500.0;
    double min_delay_ms = 1.0;
    double max_delay_ms = 100.0;
    std::uint64_t seed = 31;
  };

  explicit NetworkDynamics(Options opts) : opts_(opts), rng_(opts.seed) {}
  NetworkDynamics() : NetworkDynamics(Options{}) {}

  /// Evolve every remote link of `net` by one step.
  void step(Network& net);

 private:
  Options opts_;
  Rng rng_;
};

}  // namespace murmur::netsim
