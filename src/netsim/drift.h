// Residual-CUSUM drift detection on the linreg network predictor
// (DESIGN.md §5.14).
//
// The monitor's linear-regression forecast (netsim/predictor.h) assumes the
// link evolves smoothly; a regime shift — an operator re-shaping the link, a
// route change, sudden congestion — breaks that assumption and shows up as a
// sustained bias in the one-step-ahead residual (observed probe minus
// forecast). A two-sided standardized CUSUM accumulates that bias per stream
// (bandwidth and delay of every remote device) and fires when the cumulative
// standardized drift exceeds a threshold. The runtime reacts by re-fitting
// the predictor (dropping the pre-shift monitor history) and purging cached
// strategies that depend on the drifted link.
//
// Detection is fully deterministic given the input stream: the detector owns
// no RNG, so seeded serving runs fire at reproducible request indices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace murmur::netsim {

struct DriftOptions {
  /// CUSUM slack in stddev units: per-sample standardized residual drift
  /// below `k` is absorbed, sustained drift above it accumulates.
  double k = 0.5;
  /// Decision threshold in accumulated stddev units. Regime-scale shifts
  /// standardize to |z| >> h and fire within a couple of samples; the
  /// threshold mainly sets the false-positive run length (Siegmund's
  /// approximation gives ARL0 ~ e^(2k(h+1.17))/(4k^2) per side — ~1e7
  /// samples here, vs ~7e4 at h=10, where day-long stationary runs were
  /// observed to trip spurious cache purges).
  double h = 16.0;
  /// Residual samples a stream must collect (for its noise baseline) before
  /// the CUSUM arms; a cold stream never fires.
  std::size_t min_samples = 12;
  /// Floor on the residual stddev used for standardization, as a fraction
  /// of the running |mean residual| + this absolute floor — keeps a nearly
  /// noise-free stream from dividing by ~0 and firing on numeric dust.
  double sigma_floor = 1e-3;
};

/// One-sided pair of CUSUM statistics over standardized residuals.
class ResidualCusum {
 public:
  explicit ResidualCusum(DriftOptions opts) : opts_(opts) {}
  ResidualCusum() : ResidualCusum(DriftOptions{}) {}

  /// Feed one residual (observed - forecast). Returns true when the CUSUM
  /// crosses the threshold; the statistic and the noise baseline reset so
  /// the detector re-arms against post-shift behaviour.
  bool observe(double residual) noexcept;

  /// Current accumulated statistic (max of the two sides) in stddev units.
  double score() const noexcept { return s_pos_ > s_neg_ ? s_pos_ : s_neg_; }
  std::size_t samples() const noexcept { return stat_.count(); }
  void reset() noexcept;

 private:
  DriftOptions opts_;
  RunningStat stat_;  // residual noise baseline (mean/stddev)
  double s_pos_ = 0.0, s_neg_ = 0.0;
};

/// Per-device drift detection over the monitor's bandwidth and delay
/// forecast residuals. Not internally synchronized: the runtime feeds it
/// under its decision mutex (the same lock that already serializes the
/// monitor it watches).
class DriftDetector {
 public:
  DriftDetector(std::size_t num_devices, DriftOptions opts);
  explicit DriftDetector(std::size_t num_devices)
      : DriftDetector(num_devices, DriftOptions{}) {}

  /// Feed one probe cycle for `device`: the predictor's pre-probe forecast
  /// vs the fresh probe sample. Returns true when either metric's CUSUM
  /// fires (both streams then reset — the caller re-fits the predictor, so
  /// stale statistics would double-count the same shift).
  bool observe(std::size_t device, double forecast_bw_mbps,
               double sampled_bw_mbps, double forecast_delay_ms,
               double sampled_delay_ms) noexcept;

  std::uint64_t events() const noexcept { return events_; }
  std::uint64_t events(std::size_t device) const noexcept;
  double score(std::size_t device) const noexcept;
  void reset() noexcept;

 private:
  DriftOptions opts_;
  std::vector<ResidualCusum> bw_, delay_;
  std::vector<std::uint64_t> device_events_;
  std::uint64_t events_ = 0;
};

}  // namespace murmur::netsim
