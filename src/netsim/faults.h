// Fault injection for the simulated edge fleet.
//
// Real edge swarms churn: links black out, packets drop, devices straggle
// under thermal throttling and crash outright. A FaultPlan schedules such
// events against the simulated clock; a FaultInjector answers point-in-time
// availability/loss/slowdown queries for the transport, the executor and
// the system facade. The injector is composable with NetworkDynamics —
// dynamics mutates link *quality*, faults gate link/device *availability* —
// and both are driven from the same deterministic seeded Rng discipline.
//
// Everything is opt-in: code paths that hold no injector behave (and cost)
// exactly as before, mirroring the telemetry switch.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "common/rng.h"

namespace murmur::netsim {

inline constexpr double kNever = std::numeric_limits<double>::infinity();

/// A device's access link carries no traffic during [t_start, t_end).
struct LinkBlackout {
  std::size_t device = 0;
  double t_start_ms = 0.0;
  double t_end_ms = kNever;
};

/// Each message crossing the device's access link during the window is lost
/// independently with `probability`.
struct PacketLoss {
  std::size_t device = 0;
  double probability = 0.0;
  double t_start_ms = 0.0;
  double t_end_ms = kNever;
};

/// The device runs `slowdown`x slower (compute and serialization) during
/// the window — thermal throttling, a co-tenant burst, a failing SD card.
struct Straggler {
  std::size_t device = 0;
  double slowdown = 1.0;
  double t_start_ms = 0.0;
  double t_end_ms = kNever;
};

/// The device is gone from t_crash until t_recover (kNever = permanent).
struct DeviceCrash {
  std::size_t device = 0;
  double t_crash_ms = 0.0;
  double t_recover_ms = kNever;
};

/// Declarative schedule of fault events. Builder-style; order-independent.
class FaultPlan {
 public:
  FaultPlan& blackout(std::size_t device, double t_start_ms,
                      double t_end_ms = kNever);
  FaultPlan& packet_loss(std::size_t device, double probability,
                         double t_start_ms = 0.0, double t_end_ms = kNever);
  FaultPlan& straggler(std::size_t device, double slowdown,
                       double t_start_ms = 0.0, double t_end_ms = kNever);
  FaultPlan& crash(std::size_t device, double t_crash_ms,
                   double t_recover_ms = kNever);

  bool empty() const noexcept {
    return blackouts_.empty() && losses_.empty() && stragglers_.empty() &&
           crashes_.empty();
  }

  const std::vector<LinkBlackout>& blackouts() const noexcept {
    return blackouts_;
  }
  const std::vector<PacketLoss>& losses() const noexcept { return losses_; }
  const std::vector<Straggler>& stragglers() const noexcept {
    return stragglers_;
  }
  const std::vector<DeviceCrash>& crashes() const noexcept { return crashes_; }

  /// Randomized chaos schedule over `horizon_ms` for a fleet of
  /// `num_devices` (device 0 — the request origin — is never faulted).
  struct ChaosOptions {
    double horizon_ms = 10'000.0;
    double loss_probability = 0.05;     // steady loss on every remote link
    double blackout_rate = 0.2;         // expected blackouts per device
    double blackout_mean_ms = 500.0;
    double crash_rate = 0.2;            // expected crashes per device
    double straggler_rate = 0.3;        // expected straggle windows per device
    double straggler_slowdown = 3.0;
    double straggler_mean_ms = 1'000.0;
  };
  static FaultPlan chaos(std::size_t num_devices, const ChaosOptions& opts,
                         Rng& rng);

 private:
  std::vector<LinkBlackout> blackouts_;
  std::vector<PacketLoss> losses_;
  std::vector<Straggler> stragglers_;
  std::vector<DeviceCrash> crashes_;
};

/// Point-in-time oracle over a FaultPlan. Const queries are pure functions
/// of (plan, device, t); `drop_message` additionally samples the loss
/// process from an internal seeded Rng (mutex-guarded: the transport calls
/// it from executor worker threads).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan, std::uint64_t seed = 1337)
      : plan_(std::move(plan)), rng_(seed) {}

  /// False while the device is crashed.
  bool device_up(std::size_t device, double t_ms) const noexcept;
  /// False while the device is crashed OR its access link is blacked out.
  bool link_up(std::size_t device, double t_ms) const noexcept;
  /// Per-message loss probability on the device's access link.
  double loss_probability(std::size_t device, double t_ms) const noexcept;
  /// Compute/serialization slowdown factor (>= 1).
  double slowdown(std::size_t device, double t_ms) const noexcept;

  /// Path-level composites (both endpoints' access links).
  bool path_up(std::size_t a, std::size_t b, double t_ms) const noexcept {
    return link_up(a, t_ms) && link_up(b, t_ms);
  }
  double path_loss(std::size_t a, std::size_t b, double t_ms) const noexcept {
    const double pa = loss_probability(a, t_ms), pb = loss_probability(b, t_ms);
    return 1.0 - (1.0 - pa) * (1.0 - pb);
  }
  double path_slowdown(std::size_t a, std::size_t b,
                       double t_ms) const noexcept {
    return std::max(slowdown(a, t_ms), slowdown(b, t_ms));
  }

  /// Sample whether one message sent a -> b at `t_ms` is lost to packet
  /// loss (blackouts/crashes are checked separately via path_up).
  bool drop_message(std::size_t a, std::size_t b, double t_ms);

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  std::mutex rng_mutex_;
  Rng rng_;
};

}  // namespace murmur::netsim
