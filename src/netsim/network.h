// Star-topology edge network with tc-style traffic shaping.
//
// Device 0 is the local device (where inference requests originate); all
// devices hang off one Ethernet switch, as in the paper's testbed. The
// per-device shaped bandwidth/delay (the paper sets these with `tc`) are
// the link parameters between the switch and that device. The effective
// path between two devices traverses both endpoints' shaping.
#pragma once

#include <cassert>
#include <vector>

#include "common/units.h"
#include "netsim/device.h"

namespace murmur::netsim {

/// Shaped conditions of one device's access link.
struct LinkState {
  Bandwidth bandwidth = Bandwidth::from_gbps(1.0);
  Delay delay = Delay::from_ms(0.1);
};

/// Immutable snapshot of all devices' link conditions — this is the RL
/// "task" descriptor (one task = one network condition vector).
struct NetworkConditions {
  std::vector<double> bandwidth_mbps;  // per device (index 0 = local)
  std::vector<double> delay_ms;

  std::size_t num_devices() const noexcept { return bandwidth_mbps.size(); }
  bool operator==(const NetworkConditions&) const = default;
};

class Network {
 public:
  explicit Network(std::vector<Device> devices);

  std::size_t num_devices() const noexcept { return devices_.size(); }
  const Device& device(std::size_t i) const noexcept { return devices_[i]; }
  const std::vector<Device>& devices() const noexcept { return devices_; }

  /// tc-style shaping of one device's access link.
  void shape(std::size_t device, Bandwidth bw, Delay delay) noexcept;
  void shape_all(Bandwidth bw, Delay delay) noexcept;
  /// Apply a full conditions snapshot (sizes must match).
  void apply(const NetworkConditions& cond) noexcept;

  const LinkState& link(std::size_t device) const noexcept {
    return links_[device];
  }

  /// Ground-truth transfer time of `bytes` from device a to device b:
  /// both access-link delays plus serialization at the bottleneck rate.
  double transfer_ms(std::size_t a, std::size_t b, double bytes) const noexcept;
  /// One-way path delay a -> b (0 if a == b).
  double path_delay_ms(std::size_t a, std::size_t b) const noexcept;
  /// Bottleneck bandwidth on the a -> b path.
  Bandwidth path_bandwidth(std::size_t a, std::size_t b) const noexcept;

  NetworkConditions conditions() const;

 private:
  std::vector<Device> devices_;
  std::vector<LinkState> links_;
};

}  // namespace murmur::netsim
