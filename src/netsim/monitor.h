// Network monitoring (paper §5: "monitors network delay and bandwidth using
// active and passive methods").
//
// Active probes measure a device's link with multiplicative noise (real
// bandwidth estimators are noisy); passive observations reuse byte counts
// from recent transfers. Both feed per-metric EWMA smoothers and a history
// ring used by the linear-regression predictor.
#pragma once

#include <deque>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "netsim/network.h"

namespace murmur::netsim {

struct MonitorSample {
  double t_ms = 0.0;
  double bandwidth_mbps = 0.0;
  double delay_ms = 0.0;
};

class NetworkMonitor {
 public:
  struct Options {
    double bandwidth_noise = 0.05;  // multiplicative stddev of active probes
    double delay_noise = 0.03;
    std::size_t history = 64;  // samples retained per device
    double ewma_alpha = 0.4;
    std::uint64_t seed = 99;
  };

  NetworkMonitor(const Network& network, Options opts);
  explicit NetworkMonitor(const Network& network)
      : NetworkMonitor(network, Options{}) {}

  /// Active probe of every remote device's link at simulated time `t_ms`.
  void probe_all(double t_ms);
  /// Active probe of one device.
  MonitorSample probe(std::size_t device, double t_ms);
  /// Passive observation: a transfer of `bytes` to `device` took
  /// `elapsed_ms`; infers bandwidth after subtracting known delay.
  void observe_transfer(std::size_t device, double bytes, double elapsed_ms,
                        double t_ms);

  /// Smoothed current estimate for one device.
  double bandwidth_estimate(std::size_t device) const noexcept;
  double delay_estimate(std::size_t device) const noexcept;

  /// Estimated conditions snapshot for all devices (device 0 reported from
  /// ground truth: the local link is not probed over itself).
  NetworkConditions estimate() const;

  const std::deque<MonitorSample>& history(std::size_t device) const noexcept {
    return history_[device];
  }

  /// Drop one device's history and smoothers (predictor re-fit after a
  /// detected regime shift): the linreg forecast and the EWMA estimate
  /// re-seed from post-shift probes only, instead of blending across the
  /// discontinuity.
  void reset_device(std::size_t device) noexcept;

 private:
  const Network& network_;
  Options opts_;
  Rng rng_;
  std::vector<std::deque<MonitorSample>> history_;
  std::vector<Ewma> bw_ewma_, delay_ewma_;
};

}  // namespace murmur::netsim
