// Network-condition traces: record the evolution of link conditions
// (timestamped NetworkConditions snapshots), persist them as CSV, and
// replay them into a simulated network. Used by the dynamic-environment
// examples and the runtime ablations so experiments on "dynamic edge
// environments" are repeatable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "netsim/network.h"
#include "netsim/scenario.h"

namespace murmur::netsim {

class ConditionTrace {
 public:
  struct Frame {
    double t_ms = 0.0;
    NetworkConditions conditions;
  };

  void add(double t_ms, NetworkConditions conditions);
  std::size_t size() const noexcept { return frames_.size(); }
  bool empty() const noexcept { return frames_.empty(); }
  const Frame& frame(std::size_t i) const noexcept { return frames_[i]; }
  double duration_ms() const noexcept {
    return frames_.empty() ? 0.0 : frames_.back().t_ms;
  }
  std::size_t num_devices() const noexcept {
    return frames_.empty() ? 0 : frames_.front().conditions.num_devices();
  }

  /// Conditions at time t (step interpolation: last frame with t_ms <= t;
  /// the first frame before the trace starts).
  const NetworkConditions& at(double t_ms) const;

  /// Apply the conditions at time t to `net`.
  void replay_into(Network& net, double t_ms) const { net.apply(at(t_ms)); }

  // --- generation ------------------------------------------------------
  /// Record `frames` snapshots, `dt_ms` apart, of a network evolving under
  /// the random-walk dynamics.
  static ConditionTrace record_random_walk(Network net,
                                           NetworkDynamics::Options dynamics,
                                           int frames, double dt_ms);

  // --- persistence -------------------------------------------------------
  /// CSV schema: t_ms, bw_0, delay_0, bw_1, delay_1, ...
  std::string to_csv() const;
  static std::optional<ConditionTrace> from_csv(const std::string& csv);
  bool save(const std::string& path) const;
  static std::optional<ConditionTrace> load(const std::string& path);

 private:
  std::vector<Frame> frames_;
};

}  // namespace murmur::netsim
