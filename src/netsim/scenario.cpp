#include "netsim/scenario.h"

#include <algorithm>
#include <cmath>

namespace murmur::netsim {

const char* scenario_name(Scenario s) noexcept {
  switch (s) {
    case Scenario::kAugmentedComputing: return "augmented_computing";
    case Scenario::kDeviceSwarm: return "device_swarm";
  }
  return "?";
}

namespace {
Network finalize(std::vector<Device> devices) {
  Network net(std::move(devices));
  // Local access link: effectively unshaped (1 GbE switch port).
  net.shape(0, Bandwidth::from_gbps(1.0), Delay::from_ms(0.05));
  for (std::size_t d = 1; d < net.num_devices(); ++d)
    net.shape(d, Bandwidth::from_gbps(1.0), Delay::from_ms(0.05));
  return net;
}
}  // namespace

Network make_augmented_computing() {
  return finalize({Device::make(0, DeviceType::kRaspberryPi4),
                   Device::make(1, DeviceType::kDesktopGpu)});
}

Network make_device_swarm() { return make_pi_swarm(5); }

Network make_pi_swarm(std::size_t n) {
  std::vector<Device> devices;
  devices.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    devices.push_back(Device::make(static_cast<int>(i),
                                   DeviceType::kRaspberryPi4));
  return finalize(std::move(devices));
}

Network make_scenario(Scenario s) {
  return s == Scenario::kAugmentedComputing ? make_augmented_computing()
                                            : make_device_swarm();
}

void shape_remotes(Network& net, Bandwidth bw, Delay delay) noexcept {
  for (std::size_t d = 1; d < net.num_devices(); ++d) net.shape(d, bw, delay);
}

void NetworkDynamics::step(Network& net) {
  for (std::size_t d = 1; d < net.num_devices(); ++d) {
    const auto& link = net.link(d);
    const double bw = std::clamp(
        link.bandwidth.mbps * std::exp(rng_.normal(0.0, opts_.sigma_bw)),
        opts_.min_bandwidth_mbps, opts_.max_bandwidth_mbps);
    const double delay =
        std::clamp(link.delay.ms + rng_.normal(0.0, opts_.sigma_delay_ms),
                   opts_.min_delay_ms, opts_.max_delay_ms);
    net.shape(d, Bandwidth::from_mbps(bw), Delay::from_ms(delay));
  }
}

}  // namespace murmur::netsim
