#include "netsim/trace.h"

#include <cassert>
#include <fstream>
#include <sstream>

namespace murmur::netsim {

void ConditionTrace::add(double t_ms, NetworkConditions conditions) {
  assert(frames_.empty() || t_ms >= frames_.back().t_ms);
  assert(frames_.empty() ||
         conditions.num_devices() == frames_.front().conditions.num_devices());
  frames_.push_back(Frame{t_ms, std::move(conditions)});
}

const NetworkConditions& ConditionTrace::at(double t_ms) const {
  assert(!frames_.empty());
  const Frame* best = &frames_.front();
  for (const auto& f : frames_) {
    if (f.t_ms > t_ms) break;
    best = &f;
  }
  return best->conditions;
}

ConditionTrace ConditionTrace::record_random_walk(
    Network net, NetworkDynamics::Options dynamics, int frames, double dt_ms) {
  ConditionTrace trace;
  NetworkDynamics dyn(dynamics);
  for (int i = 0; i < frames; ++i) {
    trace.add(i * dt_ms, net.conditions());
    dyn.step(net);
  }
  return trace;
}

std::string ConditionTrace::to_csv() const {
  std::ostringstream os;
  os.precision(12);
  os << "t_ms";
  for (std::size_t d = 0; d < num_devices(); ++d)
    os << ",bw_" << d << ",delay_" << d;
  os << '\n';
  for (const auto& f : frames_) {
    os << f.t_ms;
    for (std::size_t d = 0; d < f.conditions.num_devices(); ++d)
      os << ',' << f.conditions.bandwidth_mbps[d] << ','
         << f.conditions.delay_ms[d];
    os << '\n';
  }
  return os.str();
}

std::optional<ConditionTrace> ConditionTrace::from_csv(const std::string& csv) {
  std::istringstream is(csv);
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;  // header
  // Count devices from the header: 1 + 2n columns.
  std::size_t cols = 1;
  for (char ch : line)
    if (ch == ',') ++cols;
  if (cols < 3 || (cols - 1) % 2 != 0) return std::nullopt;
  const std::size_t devices = (cols - 1) / 2;

  ConditionTrace trace;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    Frame f;
    if (!std::getline(ls, cell, ',')) return std::nullopt;
    f.t_ms = std::stod(cell);
    f.conditions.bandwidth_mbps.resize(devices);
    f.conditions.delay_ms.resize(devices);
    for (std::size_t d = 0; d < devices; ++d) {
      if (!std::getline(ls, cell, ',')) return std::nullopt;
      f.conditions.bandwidth_mbps[d] = std::stod(cell);
      if (!std::getline(ls, cell, ',')) return std::nullopt;
      f.conditions.delay_ms[d] = std::stod(cell);
    }
    if (!trace.frames_.empty() && f.t_ms < trace.frames_.back().t_ms)
      return std::nullopt;
    trace.frames_.push_back(std::move(f));
  }
  if (trace.frames_.empty()) return std::nullopt;
  return trace;
}

bool ConditionTrace::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

std::optional<ConditionTrace> ConditionTrace::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::stringstream ss;
  ss << f.rdbuf();
  return from_csv(ss.str());
}

}  // namespace murmur::netsim
