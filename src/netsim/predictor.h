// Monitoring-data predictor (paper §5): "predicts short-term monitoring
// data change ... utilizes a lightweight linear regression method", enabling
// the runtime to precompute strategies for where conditions are heading.
#pragma once

#include "common/linreg.h"
#include "netsim/monitor.h"

namespace murmur::netsim {

class MonitorPredictor {
 public:
  struct Forecast {
    double bandwidth_mbps = 0.0;
    double delay_ms = 0.0;
    double confidence = 0.0;  // min of the two fits' R^2
  };

  explicit MonitorPredictor(const NetworkMonitor& monitor)
      : monitor_(monitor) {}

  /// Forecast device `device`'s conditions `horizon_ms` past its latest
  /// sample by fitting y = a + b*t to the monitor history. Falls back to
  /// the current EWMA estimate when history is too short (< 4 samples).
  Forecast forecast(std::size_t device, double horizon_ms) const;

  /// Full predicted conditions snapshot.
  NetworkConditions forecast_all(double horizon_ms) const;

 private:
  const NetworkMonitor& monitor_;
};

}  // namespace murmur::netsim
