#include "netsim/faults.h"

#include <algorithm>

namespace murmur::netsim {

namespace {
inline bool in_window(double t, double start, double end) noexcept {
  return t >= start && t < end;
}
}  // namespace

FaultPlan& FaultPlan::blackout(std::size_t device, double t_start_ms,
                               double t_end_ms) {
  blackouts_.push_back(LinkBlackout{device, t_start_ms, t_end_ms});
  return *this;
}

FaultPlan& FaultPlan::packet_loss(std::size_t device, double probability,
                                  double t_start_ms, double t_end_ms) {
  losses_.push_back(
      PacketLoss{device, std::clamp(probability, 0.0, 1.0), t_start_ms,
                 t_end_ms});
  return *this;
}

FaultPlan& FaultPlan::straggler(std::size_t device, double slowdown,
                                double t_start_ms, double t_end_ms) {
  stragglers_.push_back(
      Straggler{device, std::max(1.0, slowdown), t_start_ms, t_end_ms});
  return *this;
}

FaultPlan& FaultPlan::crash(std::size_t device, double t_crash_ms,
                            double t_recover_ms) {
  crashes_.push_back(DeviceCrash{device, t_crash_ms, t_recover_ms});
  return *this;
}

FaultPlan FaultPlan::chaos(std::size_t num_devices, const ChaosOptions& opts,
                           Rng& rng) {
  FaultPlan plan;
  for (std::size_t d = 1; d < num_devices; ++d) {
    if (opts.loss_probability > 0.0)
      plan.packet_loss(d, opts.loss_probability, 0.0, kNever);
    if (rng.uniform() < opts.blackout_rate) {
      const double start = rng.uniform(0.0, opts.horizon_ms);
      plan.blackout(d, start, start + rng.uniform(0.5, 1.5) *
                                          opts.blackout_mean_ms);
    }
    if (rng.uniform() < opts.straggler_rate) {
      const double start = rng.uniform(0.0, opts.horizon_ms);
      plan.straggler(d, opts.straggler_slowdown, start,
                     start + rng.uniform(0.5, 1.5) * opts.straggler_mean_ms);
    }
    if (rng.uniform() < opts.crash_rate) {
      const double t = rng.uniform(0.0, opts.horizon_ms);
      // Half the crashes recover after a reboot-scale pause, half are final.
      plan.crash(d, t, rng.uniform() < 0.5 ? t + opts.horizon_ms * 0.25
                                           : kNever);
    }
  }
  return plan;
}

bool FaultInjector::device_up(std::size_t device, double t_ms) const noexcept {
  for (const auto& c : plan_.crashes())
    if (c.device == device && in_window(t_ms, c.t_crash_ms, c.t_recover_ms))
      return false;
  return true;
}

bool FaultInjector::link_up(std::size_t device, double t_ms) const noexcept {
  if (!device_up(device, t_ms)) return false;
  for (const auto& b : plan_.blackouts())
    if (b.device == device && in_window(t_ms, b.t_start_ms, b.t_end_ms))
      return false;
  return true;
}

double FaultInjector::loss_probability(std::size_t device,
                                       double t_ms) const noexcept {
  // Independent loss processes compose: P = 1 - prod(1 - p_i).
  double keep = 1.0;
  for (const auto& l : plan_.losses())
    if (l.device == device && in_window(t_ms, l.t_start_ms, l.t_end_ms))
      keep *= 1.0 - l.probability;
  return 1.0 - keep;
}

double FaultInjector::slowdown(std::size_t device, double t_ms) const noexcept {
  double s = 1.0;
  for (const auto& st : plan_.stragglers())
    if (st.device == device && in_window(t_ms, st.t_start_ms, st.t_end_ms))
      s = std::max(s, st.slowdown);
  return s;
}

bool FaultInjector::drop_message(std::size_t a, std::size_t b, double t_ms) {
  const double p = path_loss(a, b, t_ms);
  if (p <= 0.0) return false;
  std::lock_guard lock(rng_mutex_);
  return rng_.uniform() < p;
}

}  // namespace murmur::netsim
