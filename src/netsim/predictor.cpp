#include "netsim/predictor.h"

#include <algorithm>

namespace murmur::netsim {

MonitorPredictor::Forecast MonitorPredictor::forecast(
    std::size_t device, double horizon_ms) const {
  const auto& hist = monitor_.history(device);
  Forecast f;
  if (hist.size() < 4) {
    f.bandwidth_mbps = monitor_.bandwidth_estimate(device);
    f.delay_ms = monitor_.delay_estimate(device);
    f.confidence = 0.0;
    return f;
  }
  std::vector<double> ts, bws, delays;
  ts.reserve(hist.size());
  for (const auto& s : hist) {
    ts.push_back(s.t_ms);
    bws.push_back(s.bandwidth_mbps);
    delays.push_back(s.delay_ms);
  }
  const double t_pred = ts.back() + horizon_ms;
  const auto bw_fit = SimpleLinReg::fit(ts, bws);
  const auto delay_fit = SimpleLinReg::fit(ts, delays);
  f.bandwidth_mbps = std::max(0.01, bw_fit.predict(t_pred));
  f.delay_ms = std::max(0.0, delay_fit.predict(t_pred));
  f.confidence = std::min(bw_fit.r2, delay_fit.r2);
  return f;
}

NetworkConditions MonitorPredictor::forecast_all(double horizon_ms) const {
  NetworkConditions base = monitor_.estimate();
  for (std::size_t d = 1; d < base.num_devices(); ++d) {
    const Forecast f = forecast(d, horizon_ms);
    base.bandwidth_mbps[d] = f.bandwidth_mbps;
    base.delay_ms[d] = f.delay_ms;
  }
  return base;
}

}  // namespace murmur::netsim
