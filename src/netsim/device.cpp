#include "netsim/device.h"

namespace murmur::netsim {

const char* device_type_name(DeviceType t) noexcept {
  switch (t) {
    case DeviceType::kRaspberryPi4: return "RaspberryPi4";
    case DeviceType::kDesktopCpu: return "DesktopCPU";
    case DeviceType::kDesktopGpu: return "DesktopGPU";
    case DeviceType::kJetson: return "JetsonNano";
  }
  return "?";
}

Throughput device_throughput(DeviceType t) noexcept {
  switch (t) {
    case DeviceType::kRaspberryPi4: return Throughput::from_gflops(1.5);
    case DeviceType::kDesktopCpu: return Throughput::from_gflops(20.0);
    case DeviceType::kDesktopGpu: return Throughput::from_gflops(100.0);
    case DeviceType::kJetson: return Throughput::from_gflops(8.0);
  }
  return Throughput::from_gflops(1.0);
}

double device_type_feature(DeviceType t) noexcept {
  switch (t) {
    case DeviceType::kRaspberryPi4: return 0.1;
    case DeviceType::kJetson: return 0.35;
    case DeviceType::kDesktopCpu: return 0.6;
    case DeviceType::kDesktopGpu: return 1.0;
  }
  return 0.0;
}

Device Device::make(int id, DeviceType type) {
  Device d;
  d.id = id;
  d.type = type;
  d.throughput = device_throughput(type);
  d.name = std::string(device_type_name(type)) + "#" + std::to_string(id);
  return d;
}

}  // namespace murmur::netsim
