#include "netsim/network.h"

#include <algorithm>

namespace murmur::netsim {

Network::Network(std::vector<Device> devices)
    : devices_(std::move(devices)), links_(devices_.size()) {
  assert(!devices_.empty());
}

void Network::shape(std::size_t device, Bandwidth bw, Delay delay) noexcept {
  assert(device < links_.size());
  links_[device] = LinkState{bw, delay};
}

void Network::shape_all(Bandwidth bw, Delay delay) noexcept {
  for (auto& l : links_) l = LinkState{bw, delay};
}

void Network::apply(const NetworkConditions& cond) noexcept {
  assert(cond.num_devices() == links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i)
    links_[i] = LinkState{Bandwidth::from_mbps(cond.bandwidth_mbps[i]),
                          Delay::from_ms(cond.delay_ms[i])};
}

double Network::path_delay_ms(std::size_t a, std::size_t b) const noexcept {
  if (a == b) return 0.0;
  return links_[a].delay.ms + links_[b].delay.ms;
}

Bandwidth Network::path_bandwidth(std::size_t a, std::size_t b) const noexcept {
  if (a == b) return Bandwidth::from_gbps(1e6);  // in-memory
  return Bandwidth::from_mbps(
      std::min(links_[a].bandwidth.mbps, links_[b].bandwidth.mbps));
}

double Network::transfer_ms(std::size_t a, std::size_t b,
                            double bytes) const noexcept {
  if (a == b) return 0.0;
  return path_delay_ms(a, b) + path_bandwidth(a, b).transfer_ms(bytes);
}

NetworkConditions Network::conditions() const {
  NetworkConditions c;
  c.bandwidth_mbps.reserve(links_.size());
  c.delay_ms.reserve(links_.size());
  for (const auto& l : links_) {
    c.bandwidth_mbps.push_back(l.bandwidth.mbps);
    c.delay_ms.push_back(l.delay.ms);
  }
  return c;
}

}  // namespace murmur::netsim
