#include "netsim/drift.h"

#include <algorithm>
#include <cmath>

namespace murmur::netsim {

bool ResidualCusum::observe(double residual) noexcept {
  // Standardize against the baseline gathered so far, then fold the sample
  // into the baseline. Warm-up samples only build the baseline.
  if (stat_.count() < opts_.min_samples) {
    stat_.add(residual);
    return false;
  }
  const double sigma =
      std::max({stat_.stddev(), std::abs(stat_.mean()) * 0.05,
                opts_.sigma_floor});
  const double z = (residual - stat_.mean()) / sigma;
  s_pos_ = std::max(0.0, s_pos_ + z - opts_.k);
  s_neg_ = std::max(0.0, s_neg_ - z - opts_.k);
  if (s_pos_ > opts_.h || s_neg_ > opts_.h) {
    reset();
    return true;
  }
  stat_.add(residual);
  return false;
}

void ResidualCusum::reset() noexcept {
  stat_.reset();
  s_pos_ = s_neg_ = 0.0;
}

DriftDetector::DriftDetector(std::size_t num_devices, DriftOptions opts)
    : opts_(opts),
      bw_(num_devices, ResidualCusum(opts)),
      delay_(num_devices, ResidualCusum(opts)),
      device_events_(num_devices, 0) {}

bool DriftDetector::observe(std::size_t device, double forecast_bw_mbps,
                            double sampled_bw_mbps, double forecast_delay_ms,
                            double sampled_delay_ms) noexcept {
  if (device >= bw_.size()) return false;
  // Bandwidth residuals are relative (link noise is multiplicative, and a
  // 50 Mbps error means nothing at 1 Gbps but everything at 60 Mbps);
  // delay residuals stay absolute (queueing adds milliseconds, not ratios).
  const double bw_rel = (sampled_bw_mbps - forecast_bw_mbps) /
                        std::max(1e-3, forecast_bw_mbps);
  const bool bw_fired = bw_[device].observe(bw_rel);
  const bool delay_fired =
      delay_[device].observe(sampled_delay_ms - forecast_delay_ms);
  if (!bw_fired && !delay_fired) return false;
  // One shift usually moves both metrics; reset the sibling stream too so
  // it does not re-fire on the tail of the same event after the caller has
  // already re-fit the predictor.
  bw_[device].reset();
  delay_[device].reset();
  ++device_events_[device];
  ++events_;
  return true;
}

std::uint64_t DriftDetector::events(std::size_t device) const noexcept {
  return device < device_events_.size() ? device_events_[device] : 0;
}

double DriftDetector::score(std::size_t device) const noexcept {
  if (device >= bw_.size()) return 0.0;
  return std::max(bw_[device].score(), delay_[device].score());
}

void DriftDetector::reset() noexcept {
  for (auto& c : bw_) c.reset();
  for (auto& c : delay_) c.reset();
  std::fill(device_events_.begin(), device_events_.end(), 0);
  events_ = 0;
}

}  // namespace murmur::netsim
